/**
 * @file
 * Tests for the mergeable sweep-report format: parse round-trips keep
 * point entries byte-verbatim, merging shard reports reconstructs the
 * unsharded report bit-identically (the property CI relies on to fan
 * sweeps across jobs), and malformed/incomplete merges are rejected.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/report.h"
#include "sim/sweep.h"

namespace skybyte {
namespace {

/** Serialize one shard run of @p spec exactly like skybyte_sweep. */
SweepReport
reportFor(const SweepSpec &spec, const ExperimentOptions &opt,
          const ShardSpec &shard)
{
    const SweepExecution exec = runSweepShard(spec, opt, shard, 2);
    SweepReport report;
    report.sweep = spec.name;
    report.totalPoints = exec.totalPoints;
    report.shardIndex = shard.index;
    report.shardCount = shard.count;
    for (std::size_t i = 0; i < exec.points.size(); ++i) {
        const LabeledPoint &lp = exec.points[i];
        report.entries.push_back(
            {lp.index,
             sweepEntryJson(lp.index, lp.id(), exec.results[i])});
    }
    return report;
}

TEST(SweepReport, ParseRoundTripsVerbatim)
{
    SweepReport report;
    report.sweep = "smoke";
    report.totalPoints = 2;
    report.shardIndex = 0;
    report.shardCount = 1;
    SimResult res;
    res.variant = "Base-CSSD";
    res.workload = "ycsb";
    res.execTime = 12345;
    report.entries.push_back({0, sweepEntryJson(0, "ycsb/a", res)});
    res.workload = "srad";
    res.execTime = 54321;
    report.entries.push_back({1, sweepEntryJson(1, "srad/a", res)});

    const std::string text = toJson(report);
    const SweepReport parsed = parseSweepReport(text);
    EXPECT_EQ(parsed.sweep, report.sweep);
    EXPECT_EQ(parsed.totalPoints, report.totalPoints);
    EXPECT_EQ(parsed.shardIndex, report.shardIndex);
    EXPECT_EQ(parsed.shardCount, report.shardCount);
    ASSERT_EQ(parsed.entries.size(), report.entries.size());
    for (std::size_t i = 0; i < parsed.entries.size(); ++i) {
        EXPECT_EQ(parsed.entries[i].index, report.entries[i].index);
        EXPECT_EQ(parsed.entries[i].text, report.entries[i].text);
    }
    // Serializing the parse result reproduces the exact bytes.
    EXPECT_EQ(toJson(parsed), text);
}

TEST(SweepReport, ThreeShardFig09MergeIsByteIdenticalToUnsharded)
{
    const SweepSpec *spec = findSweep("fig09");
    ASSERT_NE(spec, nullptr);
    ExperimentOptions opt;
    opt.instrPerThread = 1'000;

    const std::string full = toJson(reportFor(*spec, opt, {0, 1}));

    std::vector<SweepReport> shards;
    for (std::uint32_t i = 0; i < 3; ++i) {
        // Round-trip each shard through its serialized form, exactly
        // as the CLI does when merging files from other CI jobs.
        shards.push_back(
            parseSweepReport(toJson(reportFor(*spec, opt, {i, 3}))));
    }
    const SweepReport merged = mergeSweepReports(shards);
    EXPECT_EQ(merged.shardIndex, 0u);
    EXPECT_EQ(merged.shardCount, 1u);
    EXPECT_EQ(toJson(merged), full);
}

TEST(SweepReport, MergeRejectsIncompleteAndMismatchedShards)
{
    const SweepSpec *spec = findSweep("smoke");
    ASSERT_NE(spec, nullptr);
    ExperimentOptions opt;
    opt.instrPerThread = 1'000;
    const SweepReport s0 = reportFor(*spec, opt, {0, 2});
    const SweepReport s1 = reportFor(*spec, opt, {1, 2});

    EXPECT_NO_THROW(mergeSweepReports({s0, s1}));
    // Missing a shard.
    EXPECT_THROW(mergeSweepReports({s0}), std::runtime_error);
    // Same shard twice.
    EXPECT_THROW(mergeSweepReports({s0, s0}), std::runtime_error);
    // Mixed sweeps.
    SweepReport other = s1;
    other.sweep = "fig09";
    EXPECT_THROW(mergeSweepReports({s0, other}), std::runtime_error);
    // Mismatched manifests.
    SweepReport trimmed = s1;
    trimmed.totalPoints = 3;
    EXPECT_THROW(mergeSweepReports({s0, trimmed}), std::runtime_error);
    EXPECT_THROW(mergeSweepReports({}), std::runtime_error);
}

TEST(SweepReport, DiffAcceptsIdenticalAndToleratedDrift)
{
    const SweepSpec *spec = findSweep("smoke");
    ASSERT_NE(spec, nullptr);
    ExperimentOptions opt;
    opt.instrPerThread = 1'000;
    const SweepReport a = reportFor(*spec, opt, {0, 1});

    // Identical reports agree at zero tolerance.
    EXPECT_TRUE(diffSweepReports(a, a, 0.0).empty());

    // Perturb one metric by ~0.05%: caught at 0.01%, passed at 1%.
    SweepReport drifted = a;
    const std::string key = "\"committed_instructions\": ";
    auto pos = drifted.entries[0].text.find(key);
    ASSERT_NE(pos, std::string::npos);
    pos += key.size();
    const auto end = drifted.entries[0].text.find_first_of(",\n", pos);
    const std::uint64_t value =
        std::stoull(drifted.entries[0].text.substr(pos, end - pos));
    const std::uint64_t bumped = value + value / 2000 + 1;
    drifted.entries[0].text.replace(pos, end - pos,
                                    std::to_string(bumped));
    const auto drifts = diffSweepReports(a, drifted, 0.01);
    ASSERT_EQ(drifts.size(), 1u);
    EXPECT_NE(drifts[0].find("committed_instructions"),
              std::string::npos);
    EXPECT_TRUE(diffSweepReports(a, drifted, 1.0).empty());
}

TEST(SweepReport, DiffRejectsStructuralMismatch)
{
    const SweepSpec *spec = findSweep("smoke");
    ASSERT_NE(spec, nullptr);
    ExperimentOptions opt;
    opt.instrPerThread = 1'000;
    const SweepReport a = reportFor(*spec, opt, {0, 1});

    // Different sweep name.
    SweepReport renamed = a;
    renamed.sweep = "fig09";
    EXPECT_THROW(diffSweepReports(a, renamed, 1.0), std::runtime_error);

    // A renamed metric key is structural, not numeric drift.
    SweepReport rekeyed = a;
    auto pos = rekeyed.entries[0].text.find("\"ssd_writes\"");
    ASSERT_NE(pos, std::string::npos);
    rekeyed.entries[0].text.replace(pos, 12, "\"ssd_writez\"");
    EXPECT_THROW(diffSweepReports(a, rekeyed, 100.0),
                 std::runtime_error);

    // Fewer points is incomparable.
    SweepReport shorter = a;
    shorter.entries.pop_back();
    EXPECT_THROW(diffSweepReports(a, shorter, 1.0), std::runtime_error);
}

/** @p report with entry @p index demoted to a failure record. */
SweepReport
withFailure(const SweepReport &report, std::size_t index,
            const std::string &status, const std::string &detail)
{
    SweepReport out = report;
    for (auto it = out.entries.begin(); it != out.entries.end(); ++it) {
        if (it->index != index)
            continue;
        // Recover the id from the entry text ("id": "...").
        const std::string key = "\"id\": \"";
        const auto at = it->text.find(key) + key.size();
        const std::string id =
            it->text.substr(at, it->text.find('"', at) - at);
        out.failures.push_back({index, id, status, 3, detail});
        out.entries.erase(it);
        return out;
    }
    throw std::runtime_error("no entry with that index");
}

TEST(SweepReport, FailureManifestRoundTripsAndEmptyManifestIsOmitted)
{
    const SweepSpec *spec = findSweep("smoke");
    ASSERT_NE(spec, nullptr);
    ExperimentOptions opt;
    opt.instrPerThread = 1'000;
    const SweepReport complete = reportFor(*spec, opt, {0, 1});

    // A fully successful report serializes no manifest at all — the
    // pre-existing byte layout (merge identity, pinned fingerprints)
    // must not change.
    EXPECT_EQ(toJson(complete).find("\"failures\""), std::string::npos);

    const SweepReport partial =
        withFailure(complete, 2, "failed", "signal 9 (Killed)");
    const std::string text = toJson(partial);
    EXPECT_NE(text.find("\"failures\""), std::string::npos);

    const SweepReport parsed = parseSweepReport(text);
    ASSERT_EQ(parsed.failures.size(), 1u);
    EXPECT_EQ(parsed.failures[0].index, 2u);
    EXPECT_EQ(parsed.failures[0].id, partial.failures[0].id);
    EXPECT_EQ(parsed.failures[0].status, "failed");
    EXPECT_EQ(parsed.failures[0].attempts, 3u);
    EXPECT_EQ(parsed.failures[0].detail, "signal 9 (Killed)");
    EXPECT_EQ(parsed.entries.size(), complete.entries.size() - 1);
    EXPECT_EQ(toJson(parsed), text);
}

TEST(SweepReport, MergeAcceptsPartialShardsAndKeepsTheManifest)
{
    const SweepSpec *spec = findSweep("smoke");
    ASSERT_NE(spec, nullptr);
    ExperimentOptions opt;
    opt.instrPerThread = 1'000;
    const SweepReport s0 = reportFor(*spec, opt, {0, 2});
    const SweepReport s1 = reportFor(*spec, opt, {1, 2});

    // A failure record covers its index: the merge stays legal and the
    // manifest survives into the merged report.
    const SweepReport s1partial =
        withFailure(s1, 1, "timeout", "killed after 5000 ms");
    const SweepReport merged = mergeSweepReports({s0, s1partial});
    EXPECT_EQ(merged.entries.size(), 3u);
    ASSERT_EQ(merged.failures.size(), 1u);
    EXPECT_EQ(merged.failures[0].index, 1u);
    EXPECT_EQ(merged.failures[0].status, "timeout");

    // The merged partial round-trips.
    EXPECT_EQ(toJson(parseSweepReport(toJson(merged))), toJson(merged));

    // An index covered by neither entries nor failures is still a lost
    // shard, not a partial run.
    SweepReport dropped = s1;
    dropped.entries.pop_back();
    EXPECT_THROW(mergeSweepReports({s0, dropped}), std::runtime_error);

    // An index covered twice (entry here, failure there) is corrupt.
    SweepReport overlap = s1;
    overlap.failures.push_back({0, "ycsb/Base-CSSD", "failed", 1, ""});
    EXPECT_THROW(mergeSweepReports({s0, overlap}), std::runtime_error);
}

TEST(SweepReport, DiffComparesPartialReportsGracefully)
{
    const SweepSpec *spec = findSweep("smoke");
    ASSERT_NE(spec, nullptr);
    ExperimentOptions opt;
    opt.instrPerThread = 1'000;
    const SweepReport a = reportFor(*spec, opt, {0, 1});
    const SweepReport partial =
        withFailure(a, 3, "failed", "exit 7");

    // Succeeded-vs-failed is drift, not a structural error, and the
    // drift names the point and both dispositions.
    const auto drifts = diffSweepReports(a, partial, 1.0);
    ASSERT_EQ(drifts.size(), 1u);
    EXPECT_NE(drifts[0].find("srad/SkyByte-Full"), std::string::npos);
    EXPECT_NE(drifts[0].find("ok"), std::string::npos);
    EXPECT_NE(drifts[0].find("failed"), std::string::npos);

    // Two partials that agree on the failure have no drift.
    EXPECT_TRUE(diffSweepReports(partial, partial, 0.0).empty());

    // Disagreeing failure statuses drift too.
    const SweepReport timed =
        withFailure(a, 3, "timeout", "killed after 5000 ms");
    const auto status_drift = diffSweepReports(partial, timed, 1.0);
    ASSERT_EQ(status_drift.size(), 1u);
    EXPECT_NE(status_drift[0].find("failed"), std::string::npos);
    EXPECT_NE(status_drift[0].find("timeout"), std::string::npos);
}

TEST(SweepReport, ParseRejectsGarbage)
{
    EXPECT_THROW(parseSweepReport("not json"), std::runtime_error);
    EXPECT_THROW(parseSweepReport("{\"skybyte_sweep_report\": 2}"),
                 std::runtime_error);
    EXPECT_THROW(
        parseSweepReport("{\"skybyte_sweep_report\": 1, "
                         "\"sweep\": \"x\", \"total_points\": 1, "
                         "\"shard_index\": 0, \"shard_count\": 1, "
                         "\"points\": [{\"index\": 0"),
        std::runtime_error);
}

} // namespace
} // namespace skybyte
