/**
 * @file
 * End-to-end integration tests: whole-system runs across variants,
 * checking completion, accounting invariants, and the paper's headline
 * orderings at small scale (SkyByte beats Base-CSSD, DRAM-Only beats
 * everything, write log cuts flash write traffic).
 */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/system.h"

namespace skybyte {
namespace {

ExperimentOptions
smallOpts()
{
    ExperimentOptions opt;
    opt.instrPerThread = 30'000;
    opt.footprintBytes = 32ULL * 1024 * 1024;
    return opt;
}

/**
 * Shrink the cache hierarchy so a 32 MB footprint behaves like the
 * paper's 8 GB footprints against 16 MB of LLC: without this, test-sized
 * runs never evict dirty lines to the SSD.
 */
SimConfig
testConfig(const std::string &variant)
{
    SimConfig cfg = makeConfig(variant);
    cfg.cpu.l1d.sizeBytes = 16 * 1024;
    cfg.cpu.l2.sizeBytes = 64 * 1024;
    cfg.cpu.llc.sizeBytes = 1024 * 1024;
    cfg.ssdCache.writeLogBytes = 512 * 1024;
    cfg.ssdCache.dataCacheBytes = 3584 * 1024;
    cfg.hostMem.promotedBytesMax = 16ULL * 1024 * 1024;
    return cfg;
}

SimResult
runTestVariant(const std::string &variant, const std::string &workload,
               const ExperimentOptions &opt)
{
    SimConfig cfg = testConfig(variant);
    return runConfig(cfg, workload, opt);
}

constexpr Tick kLimit = usToTicks(2'000'000.0); // 2 s simulated

TEST(SystemSmoke, DramOnlyCompletes)
{
    SimConfig cfg = testConfig("DRAM-Only");
    SimResult res = runConfig(cfg, "uniform", smallOpts());
    EXPECT_FALSE(res.timedOut);
    EXPECT_GT(res.execTime, 0u);
    EXPECT_GT(res.committedInstructions, 0u);
    EXPECT_EQ(res.ssdWrites, 0u);
    EXPECT_EQ(res.ssdReadMisses, 0u);
}

TEST(SystemSmoke, BaseCssdCompletes)
{
    SimResult res = runTestVariant("Base-CSSD", "uniform", smallOpts());
    EXPECT_FALSE(res.timedOut);
    EXPECT_GT(res.ssdReadMisses, 0u);
    EXPECT_GT(res.ssdWrites, 0u);
    EXPECT_GT(res.flashHostPrograms, 0u);
}

TEST(SystemSmoke, AllVariantsComplete)
{
    for (const auto &variant : allVariantNames()) {
        SCOPED_TRACE(variant);
        SimConfig cfg = testConfig(variant);
        System sys(cfg, "uniform", makeParams(cfg, smallOpts()));
        SimResult res = sys.run(kLimit);
        EXPECT_FALSE(res.timedOut) << variant;
        EXPECT_GT(res.committedInstructions, 0u) << variant;
    }
}

TEST(SystemSmoke, AlternativeMigrationVariantsComplete)
{
    for (const std::string variant :
         {"SkyByte-CT", "SkyByte-WCT", "AstriFlash-CXL"}) {
        SCOPED_TRACE(variant);
        SimConfig cfg = testConfig(variant);
        System sys(cfg, "uniform", makeParams(cfg, smallOpts()));
        SimResult res = sys.run(kLimit);
        EXPECT_FALSE(res.timedOut) << variant;
        EXPECT_GT(res.committedInstructions, 0u) << variant;
    }
}

TEST(SystemOrdering, DramOnlyFastest)
{
    SimResult base = runTestVariant("Base-CSSD", "uniform", smallOpts());
    SimResult ideal = runTestVariant("DRAM-Only", "uniform", smallOpts());
    EXPECT_LT(ideal.execTime, base.execTime);
}

TEST(SystemOrdering, WriteLogCutsFlashWriteTraffic)
{
    SimResult base = runTestVariant("Base-CSSD", "uniform", smallOpts());
    SimResult w = runTestVariant("SkyByte-W", "uniform", smallOpts());
    EXPECT_LT(w.flashHostPrograms, base.flashHostPrograms);
}

TEST(SystemOrdering, FullBeatsBase)
{
    SimResult base = runTestVariant("Base-CSSD", "uniform", smallOpts());
    SimResult full = runTestVariant("SkyByte-Full", "uniform", smallOpts());
    EXPECT_LT(full.execTime, base.execTime);
}

TEST(SystemAccounting, TimeBucketsCoverExecution)
{
    SimResult res = runTestVariant("SkyByte-Full", "uniform", smallOpts());
    // Per-core buckets: compute + memstall + ctxswitch + idle should not
    // exceed cores * execTime by more than scheduling slack.
    const double total = static_cast<double>(
        res.computeTicks + res.memStallTicks + res.ctxSwitchTicks);
    EXPECT_GT(total, 0.0);
    EXPECT_GT(res.contextSwitches, 0u);
}

TEST(SystemAccounting, RequestBreakdownNonzero)
{
    // ycsb's zipfian skew creates hot pages, so promotions kick in and
    // host DRAM sees traffic.
    SimResult res = runTestVariant("SkyByte-WP", "ycsb", smallOpts());
    EXPECT_GT(res.ssdReadHits + res.ssdReadMisses, 0u);
    EXPECT_GT(res.hostReads + res.hostWrites, 0u);
    EXPECT_GT(res.promotions, 0u);
    EXPECT_GT(res.ssdWrites, 0u);
}

TEST(SystemTenants, PerTenantCountsSumToAggregateTotals)
{
    // Co-located runs partition every request: each tenant owns a
    // disjoint device-address range and a disjoint thread set, so the
    // per-tenant buckets must sum exactly to the aggregate SimResult
    // totals on every variant.
    const std::string mix =
        "mix:hot=zipf:theta=0.9,footprint=8M;"
        "cold=uniform:footprint=8M,write_ratio=0.4,threads=2";
    for (const std::string variant :
         {"DRAM-Only", "Base-CSSD", "SkyByte-W", "SkyByte-Full"}) {
        SCOPED_TRACE(variant);
        SimConfig cfg = testConfig(variant);
        ExperimentOptions opt = smallOpts();
        opt.footprintBytes = 0; // tenants size their own footprints
        System sys(cfg, mix, makeParams(cfg, opt));
        const SimResult res = sys.run(kLimit);
        ASSERT_FALSE(res.timedOut);
        ASSERT_EQ(res.tenants.size(), 2u);
        EXPECT_EQ(res.tenants[0].name, "hot");
        EXPECT_EQ(res.tenants[1].name, "cold");
        EXPECT_EQ(res.tenants[1].threads, 2);

        std::uint64_t instructions = 0;
        std::uint64_t host_reads = 0;
        std::uint64_t host_writes = 0;
        std::uint64_t ssd_hits = 0;
        std::uint64_t ssd_misses = 0;
        std::uint64_t ssd_writes = 0;
        std::uint64_t log_appends = 0;
        int threads = 0;
        for (const TenantResult &t : res.tenants) {
            instructions += t.instructions;
            host_reads += t.hostReads;
            host_writes += t.hostWrites;
            ssd_hits += t.ssdReadHits;
            ssd_misses += t.ssdReadMisses;
            ssd_writes += t.ssdWrites;
            log_appends += t.logAppends;
            threads += t.threads;
            EXPECT_GT(t.instructions, 0u) << t.name;
            EXPECT_LE(t.execTime, res.execTime) << t.name;
        }
        EXPECT_EQ(threads, sys.workload().numThreads());
        EXPECT_EQ(instructions, res.committedInstructions);
        EXPECT_EQ(host_reads, res.hostReads);
        EXPECT_EQ(host_writes, res.hostWrites);
        EXPECT_EQ(ssd_hits, res.ssdReadHits);
        EXPECT_EQ(ssd_misses, res.ssdReadMisses);
        EXPECT_EQ(ssd_writes, res.ssdWrites);
        EXPECT_EQ(log_appends, res.logAppends);
        // The run must actually exercise both sides of the split.
        if (variant != "DRAM-Only") {
            EXPECT_GT(ssd_hits + ssd_misses, 0u);
            EXPECT_GT(ssd_writes, 0u);
        }
    }
}

TEST(SystemTenants, PerTenantLatencyHistogramsPartitionAggregate)
{
    // Tenant off-chip latency histograms record at the same uncore
    // sample sites as the aggregate, so merging them must reproduce the
    // aggregate exactly — same total count, same per-bucket CDF, same
    // percentiles. Every off-chip line is either a tenant device line
    // or a thread-private line, both of which classify to a tenant.
    const std::string mix =
        "mix:hot=zipf:theta=0.9,footprint=8M;"
        "cold=uniform:footprint=8M,write_ratio=0.4,threads=2";
    for (const std::string variant :
         {"Base-CSSD", "SkyByte-W", "SkyByte-Full"}) {
        SCOPED_TRACE(variant);
        SimConfig cfg = testConfig(variant);
        ExperimentOptions opt = smallOpts();
        opt.footprintBytes = 0;
        System sys(cfg, mix, makeParams(cfg, opt));
        const SimResult res = sys.run(kLimit);
        ASSERT_FALSE(res.timedOut);
        ASSERT_EQ(res.tenants.size(), 2u);
        LatencyHistogram merged;
        for (const TenantResult &t : res.tenants) {
            EXPECT_GT(t.offchipLatency.count(), 0u) << t.name;
            merged.merge(t.offchipLatency);
        }
        EXPECT_EQ(merged.count(), res.offchipLatency.count());
        EXPECT_EQ(merged.cdfPoints(), res.offchipLatency.cdfPoints());
        for (const double p : {0.5, 0.95, 0.99})
            EXPECT_EQ(merged.percentileTicks(p),
                      res.offchipLatency.percentileTicks(p));
    }
}

TEST(SystemTenants, WeightedAdmissionDelaysAreAccountedPerTenant)
{
    // A deliberately tight credit pool paces both tenants; the delays
    // must show up in the per-tenant QoS counters and the run must
    // still complete with a sane fairness index.
    const std::string mix =
        "mix:hot=zipf:theta=0.9,footprint=8M,qos=3;"
        "cold=uniform:footprint=8M,write_ratio=0.4,threads=2,qos=1";
    SimConfig cfg = testConfig("SkyByte-W");
    cfg.qos.weightedAdmission = true;
    cfg.qos.epochTicks = usToTicks(5.0);
    cfg.qos.creditsPerEpoch = 32;
    ExperimentOptions opt = smallOpts();
    opt.footprintBytes = 0;
    System sys(cfg, mix, makeParams(cfg, opt));
    const SimResult res = sys.run(kLimit);
    ASSERT_FALSE(res.timedOut);
    ASSERT_EQ(res.tenants.size(), 2u);
    EXPECT_DOUBLE_EQ(res.tenants[0].qosWeight, 3.0);
    EXPECT_DOUBLE_EQ(res.tenants[1].qosWeight, 1.0);
    std::uint64_t delayed = 0;
    double delay_us = 0;
    for (const TenantResult &t : res.tenants) {
        delayed += t.qosDelayedReads + t.qosDelayedWrites;
        delay_us += t.qosThrottleDelayUs;
    }
    EXPECT_GT(delayed, 0u);
    EXPECT_GT(delay_us, 0.0);
    EXPECT_GT(res.fairnessIpc(), 0.0);
    EXPECT_LE(res.fairnessIpc(), 1.0);
}

TEST(SystemDeterminism, SameSeedSameResult)
{
    SimResult a = runTestVariant("SkyByte-Full", "uniform", smallOpts());
    SimResult b = runTestVariant("SkyByte-Full", "uniform", smallOpts());
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.committedInstructions, b.committedInstructions);
    EXPECT_EQ(a.flashHostPrograms, b.flashHostPrograms);
}

} // namespace
} // namespace skybyte
