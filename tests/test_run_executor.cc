/**
 * @file
 * End-to-end tests for the hardened, process-isolated sweep executor
 * (sim/run_executor.h), driven entirely by the deterministic
 * SKYBYTE_FAULT injection hook so no test depends on real crashes or
 * flaky timing:
 *
 *  - a fault-free isolated run is byte-identical to the in-process
 *    runner's report;
 *  - injected crash and hang points complete via retries;
 *  - a permanently failing point degrades to a partial report whose
 *    failure manifest names it;
 *  - resume re-runs only incomplete points (including a point whose
 *    committed result was deleted) and reproduces the clean report
 *    byte-for-byte;
 *  - the journal tolerates a torn trailing record and rejects
 *    mismatched resumes.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fs.h"
#include "sim/report.h"
#include "sim/run_executor.h"
#include "sim/sweep.h"

namespace skybyte {
namespace {

/** Tiny run scale: the smoke grid stays < 100 ms per point. */
ExperimentOptions
tinyOptions()
{
    ExperimentOptions opt;
    opt.instrPerThread = 500;
    return opt;
}

/** Fresh temp run dir, removed on destruction. */
struct TempDir
{
    TempDir()
    {
        std::string tmpl =
            (std::filesystem::temp_directory_path() / "skybyte_exec_XXXXXX")
                .string();
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (::mkdtemp(buf.data()) == nullptr)
            throw std::runtime_error("mkdtemp failed");
        path = buf.data();
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::string path;
};

/** Scoped SKYBYTE_FAULT / SKYBYTE_BACKOFF_MS environment. */
struct ScopedEnv
{
    ScopedEnv(const char *name, const std::string &value) : name_(name)
    {
        ::setenv(name, value.c_str(), 1);
    }
    ~ScopedEnv() { ::unsetenv(name_); }
    const char *name_;
};

const SweepSpec &
smokeSpec()
{
    const SweepSpec *spec = findSweep("smoke");
    if (spec == nullptr)
        throw std::runtime_error("smoke sweep not registered");
    return *spec;
}

std::vector<LabeledPoint>
smokePoints(std::size_t &total)
{
    return expandShard(smokeSpec(), tinyOptions(), {0, 1}, total);
}

ExecutorOptions
fastOptions(const std::string &runDir)
{
    ExecutorOptions opt;
    opt.runDir = runDir;
    opt.backoffBaseMs = 2; // keep retry tests quick and deterministic
    return opt;
}

/** The in-process runner's report, the byte-identity reference. */
SweepReport
inProcessReport()
{
    const SweepExecution exec =
        runSweepShard(smokeSpec(), tinyOptions(), {0, 1}, 2);
    SweepReport report;
    report.sweep = "smoke";
    report.totalPoints = exec.totalPoints;
    for (std::size_t i = 0; i < exec.points.size(); ++i) {
        const LabeledPoint &lp = exec.points[i];
        report.entries.push_back(
            {lp.index,
             sweepEntryJson(lp.index, lp.id(), exec.results[i])});
    }
    return report;
}

SweepReport
isolatedReport(const IsolatedExecution &exec, std::size_t total)
{
    return buildIsolatedReport("smoke", total, {0, 1}, exec);
}

TEST(FaultSpec, ParsesActionsAndAttemptBounds)
{
    const std::vector<FaultSpec> faults = parseFaultSpecs(
        "ycsb/Base-CSSD:crash@1 srad/Base-CSSD:hang "
        "mix:a=zipf;b=scan/SkyByte-Full:exit=7@2");
    ASSERT_EQ(faults.size(), 3u);
    EXPECT_EQ(faults[0].pointId, "ycsb/Base-CSSD");
    EXPECT_EQ(faults[0].action, FaultSpec::Action::Crash);
    EXPECT_EQ(faults[0].maxAttempt, 1u);
    EXPECT_EQ(faults[1].action, FaultSpec::Action::Hang);
    EXPECT_EQ(faults[1].maxAttempt, 0u);
    // Point ids may contain ':' and ';' (mix specs); only the LAST
    // colon separates the action.
    EXPECT_EQ(faults[2].pointId, "mix:a=zipf;b=scan/SkyByte-Full");
    EXPECT_EQ(faults[2].action, FaultSpec::Action::Exit);
    EXPECT_EQ(faults[2].exitCode, 7);
    EXPECT_EQ(faults[2].maxAttempt, 2u);

    EXPECT_THROW(parseFaultSpecs("noaction"), std::invalid_argument);
    EXPECT_THROW(parseFaultSpecs("id:explode"), std::invalid_argument);
    EXPECT_THROW(parseFaultSpecs("id:exit=999"), std::invalid_argument);
    EXPECT_THROW(parseFaultSpecs("id:crash@0"), std::invalid_argument);
    EXPECT_THROW(parseFaultSpecs("id:crash@x"), std::invalid_argument);
}

TEST(Backoff, DeterministicSeededExponentialWithJitter)
{
    // Same inputs, same delay — retries are reproducible.
    EXPECT_EQ(backoffDelayMs(100, 1, 42, 3),
              backoffDelayMs(100, 1, 42, 3));
    // Different point/attempt decorrelate through the jitter stream.
    EXPECT_NE(backoffDelayMs(100, 1, 42, 3),
              backoffDelayMs(100, 2, 42, 3));
    // Exponential envelope: delay k lives in [base<<(k-1), base<<k).
    for (std::uint32_t k = 1; k <= 8; ++k) {
        const std::uint64_t d = backoffDelayMs(100, k, 7, 0);
        const std::uint64_t lo = 100ull << std::min(k - 1, 6u);
        EXPECT_GE(d, lo);
        EXPECT_LT(d, lo + 100);
    }
    // base 0 disables the backoff entirely.
    EXPECT_EQ(backoffDelayMs(0, 3, 42, 3), 0u);
}

TEST(RunExecutor, FaultFreeRunIsByteIdenticalToInProcess)
{
    TempDir dir;
    std::size_t total = 0;
    const std::vector<LabeledPoint> points = smokePoints(total);
    const IsolatedExecution exec = runSweepIsolated(
        "smoke", total, {0, 1}, points, fastOptions(dir.path));
    ASSERT_TRUE(exec.complete());
    for (const PointOutcome &o : exec.outcomes) {
        EXPECT_EQ(o.attempts, 1u);
        EXPECT_FALSE(o.resumedFromDisk);
    }
    EXPECT_EQ(toJson(isolatedReport(exec, total)),
              toJson(inProcessReport()));

    // The journal recorded one ok attempt per point.
    JournalHeader header;
    std::vector<JournalRecord> records;
    ASSERT_TRUE(readJournal(journalPath(dir.path), header, records));
    EXPECT_EQ(header.sweep, "smoke");
    EXPECT_EQ(header.totalPoints, total);
    ASSERT_EQ(records.size(), points.size());
    for (const JournalRecord &rec : records)
        EXPECT_EQ(rec.status, "ok");
}

TEST(RunExecutor, CrashAndHangPointsCompleteViaRetries)
{
    TempDir dir;
    // Point 0 crashes on its first attempt, point 2 hangs on its
    // first attempt; both succeed on retry. Deterministic: the fault
    // fires iff attempt <= @bound.
    ScopedEnv fault("SKYBYTE_FAULT",
                    "ycsb/Base-CSSD:crash@1 srad/Base-CSSD:hang@1");
    std::size_t total = 0;
    const std::vector<LabeledPoint> points = smokePoints(total);
    ExecutorOptions opt = fastOptions(dir.path);
    opt.retries = 2;
    opt.timeoutMs = 1500; // reaps the hanging child
    const IsolatedExecution exec =
        runSweepIsolated("smoke", total, {0, 1}, points, opt);
    ASSERT_TRUE(exec.complete());
    EXPECT_EQ(exec.outcomes[0].attempts, 2u);
    EXPECT_EQ(exec.outcomes[2].attempts, 2u);
    EXPECT_EQ(exec.outcomes[1].attempts, 1u);

    // Recovered results are byte-identical to a clean run.
    EXPECT_EQ(toJson(isolatedReport(exec, total)),
              toJson(inProcessReport()));

    // The journal names the failure kinds.
    JournalHeader header;
    std::vector<JournalRecord> records;
    ASSERT_TRUE(readJournal(journalPath(dir.path), header, records));
    bool saw_crash = false, saw_timeout = false;
    for (const JournalRecord &rec : records) {
        if (rec.index == 0 && rec.attempt == 1) {
            EXPECT_EQ(rec.status, "failed");
            EXPECT_NE(rec.detail.find("signal"), std::string::npos);
            saw_crash = true;
        }
        if (rec.index == 2 && rec.attempt == 1) {
            EXPECT_EQ(rec.status, "timeout");
            saw_timeout = true;
        }
    }
    EXPECT_TRUE(saw_crash);
    EXPECT_TRUE(saw_timeout);
}

TEST(RunExecutor, PermanentFailureDegradesToPartialManifest)
{
    TempDir dir;
    ScopedEnv fault("SKYBYTE_FAULT", "srad/SkyByte-Full:exit=7");
    std::size_t total = 0;
    const std::vector<LabeledPoint> points = smokePoints(total);
    ExecutorOptions opt = fastOptions(dir.path);
    opt.retries = 1;
    const IsolatedExecution exec =
        runSweepIsolated("smoke", total, {0, 1}, points, opt);
    EXPECT_FALSE(exec.complete());
    EXPECT_EQ(exec.countWith(PointStatus::Ok), 3u);
    EXPECT_EQ(exec.countWith(PointStatus::Failed), 1u);
    EXPECT_EQ(exec.outcomes[3].attempts, 2u);
    EXPECT_EQ(exec.outcomes[3].detail, "exit 7");

    // The partial report's manifest names the failing point, and the
    // manifest round-trips through serialize/parse.
    const SweepReport report = isolatedReport(exec, total);
    ASSERT_EQ(report.failures.size(), 1u);
    EXPECT_EQ(report.failures[0].id, "srad/SkyByte-Full");
    EXPECT_EQ(report.failures[0].status, "failed");
    EXPECT_EQ(report.failures[0].attempts, 2u);
    const SweepReport parsed = parseSweepReport(toJson(report));
    ASSERT_EQ(parsed.failures.size(), 1u);
    EXPECT_EQ(parsed.failures[0].id, report.failures[0].id);
    EXPECT_EQ(parsed.failures[0].status, report.failures[0].status);
    EXPECT_EQ(parsed.failures[0].attempts,
              report.failures[0].attempts);
    EXPECT_EQ(parsed.failures[0].detail, report.failures[0].detail);
    EXPECT_EQ(toJson(parsed), toJson(report));
}

TEST(RunExecutor, CleanExitWithoutResultIsAFailure)
{
    TempDir dir;
    // exit=0 exits "successfully" without committing a result — the
    // executor must not trust the exit code alone.
    ScopedEnv fault("SKYBYTE_FAULT", "ycsb/SkyByte-Full:exit=0");
    std::size_t total = 0;
    const std::vector<LabeledPoint> points = smokePoints(total);
    const IsolatedExecution exec = runSweepIsolated(
        "smoke", total, {0, 1}, points, fastOptions(dir.path));
    EXPECT_EQ(exec.outcomes[1].status, PointStatus::Failed);
    EXPECT_NE(exec.outcomes[1].detail.find("without a committed"),
              std::string::npos);
}

TEST(RunExecutor, ResumeRerunsOnlyIncompletePoints)
{
    TempDir dir;
    std::size_t total = 0;
    const std::vector<LabeledPoint> points = smokePoints(total);
    {
        // First driver run: one point fails permanently (the stand-in
        // for a SIGKILLed driver leaving incomplete state behind).
        ScopedEnv fault("SKYBYTE_FAULT", "srad/Base-CSSD:exit=3");
        ExecutorOptions opt = fastOptions(dir.path);
        opt.retries = 1;
        const IsolatedExecution first =
            runSweepIsolated("smoke", total, {0, 1}, points, opt);
        EXPECT_EQ(first.countWith(PointStatus::Ok), 3u);
    }
    // Second driver invocation (fault cleared): resumes the journal,
    // adopts the three committed results and re-runs only point 2.
    ExecutorOptions opt = fastOptions(dir.path);
    opt.resume = true;
    const IsolatedExecution second =
        runSweepIsolated("smoke", total, {0, 1}, points, opt);
    ASSERT_TRUE(second.complete());
    EXPECT_TRUE(second.outcomes[0].resumedFromDisk);
    EXPECT_TRUE(second.outcomes[1].resumedFromDisk);
    EXPECT_FALSE(second.outcomes[2].resumedFromDisk);
    EXPECT_TRUE(second.outcomes[3].resumedFromDisk);
    // Attempt numbering continues across invocations: 2 failed
    // attempts in run one, success on the third.
    EXPECT_EQ(second.outcomes[2].attempts, 3u);

    // The resumed report is byte-identical to a never-failed run.
    EXPECT_EQ(toJson(isolatedReport(second, total)),
              toJson(inProcessReport()));
}

TEST(RunExecutor, ResumeRerunsPointWithMissingResultFile)
{
    TempDir dir;
    std::size_t total = 0;
    const std::vector<LabeledPoint> points = smokePoints(total);
    const IsolatedExecution first = runSweepIsolated(
        "smoke", total, {0, 1}, points, fastOptions(dir.path));
    ASSERT_TRUE(first.complete());
    // Lose one committed result (torn disk, manual cleanup, ...).
    std::filesystem::remove(pointResultPath(dir.path, 1));

    ExecutorOptions opt = fastOptions(dir.path);
    opt.resume = true;
    const IsolatedExecution second =
        runSweepIsolated("smoke", total, {0, 1}, points, opt);
    ASSERT_TRUE(second.complete());
    EXPECT_FALSE(second.outcomes[1].resumedFromDisk);
    EXPECT_TRUE(second.outcomes[0].resumedFromDisk);
    EXPECT_EQ(toJson(isolatedReport(second, total)),
              toJson(inProcessReport()));
}

TEST(RunExecutor, JournalToleratesTornTrailingRecord)
{
    TempDir dir;
    std::size_t total = 0;
    const std::vector<LabeledPoint> points = smokePoints(total);
    const IsolatedExecution first = runSweepIsolated(
        "smoke", total, {0, 1}, points, fastOptions(dir.path));
    ASSERT_TRUE(first.complete());

    // Tear the final journal record mid-line, as a driver killed
    // inside the append would.
    const std::string path = journalPath(dir.path);
    std::string text = readFileText(path);
    ASSERT_FALSE(text.empty());
    text.resize(text.size() - 25);
    std::ofstream(path, std::ios::trunc | std::ios::binary) << text;

    JournalHeader header;
    std::vector<JournalRecord> records;
    ASSERT_TRUE(readJournal(path, header, records));
    EXPECT_EQ(records.size(), points.size() - 1);

    // And resume still completes the run: the torn record's point has
    // its committed result, so nothing even re-runs.
    ExecutorOptions opt = fastOptions(dir.path);
    opt.resume = true;
    const IsolatedExecution second =
        runSweepIsolated("smoke", total, {0, 1}, points, opt);
    ASSERT_TRUE(second.complete());
    EXPECT_EQ(toJson(isolatedReport(second, total)),
              toJson(inProcessReport()));
}

TEST(RunExecutor, RunDirStateErrors)
{
    TempDir dir;
    std::size_t total = 0;
    const std::vector<LabeledPoint> points = smokePoints(total);

    // Resume without a journal is a state error...
    ExecutorOptions opt = fastOptions(dir.path);
    opt.resume = true;
    EXPECT_THROW(
        runSweepIsolated("smoke", total, {0, 1}, points, opt),
        RunDirError);

    // ...a fresh run refuses to clobber an existing journal...
    const IsolatedExecution first = runSweepIsolated(
        "smoke", total, {0, 1}, points, fastOptions(dir.path));
    ASSERT_TRUE(first.complete());
    EXPECT_THROW(runSweepIsolated("smoke", total, {0, 1}, points,
                                  fastOptions(dir.path)),
                 RunDirError);

    // ...and a resume must match the journal's sweep manifest.
    EXPECT_THROW(
        runSweepIsolated("fig09", total, {0, 1}, points, opt),
        RunDirError);
    EXPECT_THROW(
        runSweepIsolated("smoke", total + 1, {0, 1}, points, opt),
        RunDirError);

    // Corruption before the final line is rejected, not skipped.
    const std::string path = journalPath(dir.path);
    std::string text = readFileText(path);
    const auto first_nl = text.find('\n');
    ASSERT_NE(first_nl, std::string::npos);
    text.insert(first_nl + 1, "{\"point\": garbage\n");
    std::ofstream(path, std::ios::trunc | std::ios::binary) << text;
    JournalHeader header;
    std::vector<JournalRecord> records;
    EXPECT_THROW(readJournal(path, header, records), RunDirError);
}

} // namespace
} // namespace skybyte
