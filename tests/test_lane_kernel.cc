/**
 * @file
 * Tests for the multi-lane parallel kernel stack: the SPSC boundary
 * ring, the conservative-window math (property-tested: no admissible
 * message can land inside the window that sent it), LaneEventKernel
 * determinism across worker counts (including the outbox-overflow
 * path), the LaneBatchStager record-stream identity, and end-to-end
 * SimResult fingerprint equality for lanes in {1,2,4,8} — the gate
 * that makes the `lanes` knob a pure wall-clock knob.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/lane_kernel.h"
#include "common/spsc_ring.h"
#include "sim/experiment.h"
#include "sim/lane_stage.h"
#include "sim/report.h"
#include "sim/system.h"
#include "trace/workload.h"

namespace skybyte {
namespace {

std::uint32_t
xorshift(std::uint32_t &state)
{
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
}

// ---------------------------------------------------------------------
// SpscRing
// ---------------------------------------------------------------------

TEST(SpscRing, PushPopFifo)
{
    SpscRing<int> ring(8);
    EXPECT_GE(ring.capacity(), 8u);
    EXPECT_TRUE(ring.empty());
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(ring.tryPush(int(i)));
    int v = -1;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(ring.tryPop(v));
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PushFailsWhenFull)
{
    SpscRing<int> ring(4);
    int i = 0;
    while (ring.tryPush(int(i)))
        ++i;
    EXPECT_EQ(static_cast<std::size_t>(i), ring.capacity());
    int v = -1;
    ASSERT_TRUE(ring.tryPop(v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(ring.tryPush(99)); // slot freed
}

TEST(SpscRing, TwoThreadStressKeepsOrder)
{
    // One producer, one consumer, small ring: the TSan job turns this
    // into a memory-ordering proof for the acquire/release pairing.
    constexpr std::uint64_t kItems = 50'000;
    SpscRing<std::uint64_t> ring(64);
    std::uint64_t mismatches = 0;
    std::thread consumer([&] {
        std::uint64_t expect = 0;
        std::uint64_t v = 0;
        while (expect < kItems) {
            if (ring.tryPop(v)) {
                if (v != expect)
                    ++mismatches;
                ++expect;
            } else {
                std::this_thread::yield(); // single-core hosts
            }
        }
    });
    for (std::uint64_t i = 0; i < kItems;) {
        if (ring.tryPush(std::uint64_t(i)))
            ++i;
        else
            std::this_thread::yield();
    }
    consumer.join();
    EXPECT_EQ(mismatches, 0u);
    EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------------
// LaneWindow math
// ---------------------------------------------------------------------

TEST(LaneWindow, FromLatenciesTakesTheMinimum)
{
    const LaneWindow w = LaneWindow::fromLatencies({640, 160, 48'000});
    EXPECT_EQ(w.windowTicks, 160u);
    EXPECT_EQ(w.minCrossLatency, 160u);
    EXPECT_NO_THROW(w.validate());
}

TEST(LaneWindow, RejectsEmptyAndZeroLatencies)
{
    EXPECT_THROW(LaneWindow::fromLatencies({}), std::invalid_argument);
    EXPECT_THROW(LaneWindow::fromLatencies({100, 0}),
                 std::invalid_argument);
}

TEST(LaneWindow, ValidateRejectsWindowsWiderThanL)
{
    EXPECT_THROW((LaneWindow{0, 10}).validate(), std::invalid_argument);
    EXPECT_THROW((LaneWindow{11, 10}).validate(), std::invalid_argument);
    EXPECT_NO_THROW((LaneWindow{10, 10}).validate());
    EXPECT_NO_THROW((LaneWindow{1, 10}).validate());
}

TEST(LaneWindow, WindowEndSaturatesAtTickMax)
{
    const LaneWindow w{1000, 1000};
    EXPECT_EQ(w.windowEnd(kTickMax - 10), kTickMax);
    EXPECT_EQ(w.windowEnd(0), 999u);
}

/**
 * The conservative-window safety property: for any W <= L, a message
 * sent from inside window [start, windowEnd(start)] that satisfies the
 * admission bound (deliver >= send_now + L) is due strictly after the
 * window — so exchanging messages only at barriers can never deliver
 * an event into a lane's past.
 */
TEST(LaneWindow, PropertyAdmissibleImpliesAfterWindow)
{
    std::uint32_t rng = 0xdecafbadu;
    for (int trial = 0; trial < 20'000; ++trial) {
        const Tick l = 1 + xorshift(rng) % 100'000;
        const LaneWindow w{1 + xorshift(rng) % l, l};
        ASSERT_NO_THROW(w.validate());
        const Tick start = xorshift(rng) % 1'000'000'000;
        const Tick send_now =
            start + xorshift(rng) % w.windowTicks; // inside the window
        ASSERT_LE(send_now, w.windowEnd(start));
        const Tick deliver = send_now + l + xorshift(rng) % 1000;
        ASSERT_TRUE(w.admissible(send_now, deliver));
        EXPECT_GT(deliver, w.windowEnd(start));
        // And anything cheaper than L is inadmissible.
        EXPECT_FALSE(w.admissible(send_now, send_now + l - 1));
    }
}

// ---------------------------------------------------------------------
// LaneEventKernel
// ---------------------------------------------------------------------

TEST(LaneEventKernel, ClampsWorkersToGroups)
{
    LaneEventKernel k(4, 8, LaneWindow{100, 100});
    EXPECT_EQ(k.groups(), 4u);
    EXPECT_EQ(k.workers(), 4u);
    LaneEventKernel k0(4, 0, LaneWindow{100, 100});
    EXPECT_EQ(k0.workers(), 1u);
}

TEST(LaneEventKernel, BoundedRunAlignsEveryLaneClock)
{
    LaneEventKernel k(3, 1, LaneWindow{50, 50});
    int ran = 0;
    k.schedule(0, 10, [&] { ++ran; });
    k.schedule(2, 500, [&] { ++ran; }); // past the limit: must not run
    k.run(200);
    EXPECT_EQ(ran, 1);
    for (std::size_t g = 0; g < k.groups(); ++g)
        EXPECT_EQ(k.lane(g).now(), 200u);
    EXPECT_EQ(k.pending(), 1u);
}

TEST(LaneEventKernel, PostBelowLatencyFloorThrows)
{
    for (const std::size_t workers : {1u, 2u}) {
        SCOPED_TRACE(workers);
        LaneEventKernel k(2, workers, LaneWindow{100, 100});
        k.schedule(0, 5, [&k] {
            k.post(0, 1, k.lane(0).now() + 99, [] {});
        });
        EXPECT_THROW(k.run(), std::logic_error);
    }
}

TEST(LaneEventKernel, PostToUnknownGroupThrows)
{
    LaneEventKernel k(2, 1, LaneWindow{100, 100});
    k.schedule(0, 0, [&k] { k.post(0, 7, 1000, [] {}); });
    EXPECT_THROW(k.run(), std::out_of_range);
}

/**
 * Overflow path: one window sends far more cross-group messages than
 * the outbox ring holds (kRingSlots), forcing the spill vector; the
 * delivery order on the receiver must stay the (when, from, seq) merge
 * order regardless of worker count.
 */
TEST(LaneEventKernel, RingOverflowPreservesMergeOrder)
{
    constexpr int kSends = 3000; // ~3x kRingSlots
    constexpr Tick kL = 100;
    std::vector<int> orders[2];
    for (const std::size_t workers : {1u, 2u}) {
        std::vector<int> &order =
            orders[workers == 1u ? 0 : 1]; // filled by group 1 only
        LaneEventKernel k(2, workers, LaneWindow{kL, kL});
        k.schedule(0, 0, [&k, &order] {
            const Tick now = k.lane(0).now();
            for (int i = 0; i < kSends; ++i) {
                k.post(0, 1, now + kL + i % 7,
                       [&order, i] { order.push_back(i); });
            }
        });
        k.run();
        ASSERT_EQ(order.size(), static_cast<std::size_t>(kSends));
        EXPECT_EQ(k.messagesMerged(), static_cast<std::uint64_t>(kSends));
    }
    EXPECT_EQ(orders[0], orders[1]);
}

/** The bench's chain shape at test scale, for the determinism gate. */
struct TestChain
{
    LaneEventKernel *k;
    std::uint64_t *executed; ///< [groups]
    std::uint64_t *checksum; ///< [groups]
    std::uint64_t target;
    Tick crossLatency;
    std::uint32_t group;
    std::uint32_t rng;

    void
    operator()()
    {
        if (executed[group] >= target)
            return;
        ++executed[group];
        const std::uint32_t x = xorshift(rng);
        checksum[group] ^= (checksum[group] << 1) ^ x
                           ^ static_cast<std::uint64_t>(
                               k->lane(group).now());
        if (x % 16 == 0) {
            TestChain next = *this;
            next.group = static_cast<std::uint32_t>(
                (group + 1 + (x >> 4) % (k->groups() - 1)) % k->groups());
            k->post(group, next.group,
                    k->lane(group).now() + crossLatency + x % 64, next);
            return;
        }
        k->lane(group).scheduleAfter(1 + x % 128, *this);
    }
};

TEST(LaneEventKernel, ChecksumIdenticalAcrossWorkerCounts)
{
    constexpr std::size_t kGroups = 8;
    constexpr Tick kL = 1000;
    std::uint64_t reference = 0;
    std::uint64_t reference_events = 0;
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
        SCOPED_TRACE(workers);
        LaneEventKernel k(kGroups, workers, LaneWindow{kL, kL});
        std::vector<std::uint64_t> executed(kGroups, 0);
        std::vector<std::uint64_t> checksum(kGroups, 0);
        for (std::size_t g = 0; g < kGroups; ++g) {
            k.schedule(g, static_cast<Tick>(g),
                       TestChain{&k, executed.data(), checksum.data(),
                                 4000, kL, static_cast<std::uint32_t>(g),
                                 0xabcd1234u
                                     + static_cast<std::uint32_t>(g)});
        }
        k.run();
        std::uint64_t combined = 0;
        std::uint64_t events = 0;
        for (std::size_t g = 0; g < kGroups; ++g) {
            combined = combined * 1315423911u ^ checksum[g];
            events += executed[g];
        }
        EXPECT_GT(k.messagesMerged(), 0u);
        if (workers == 1) {
            reference = combined;
            reference_events = events;
            continue;
        }
        EXPECT_EQ(combined, reference);
        EXPECT_EQ(events, reference_events);
    }
}

// ---------------------------------------------------------------------
// resolvedKernelLanes
// ---------------------------------------------------------------------

/** Restores SKYBYTE_SIM_LANES on scope exit. */
struct LanesEnvGuard
{
    ~LanesEnvGuard() { unsetenv("SKYBYTE_SIM_LANES"); }
    void
    set(const char *value)
    {
        setenv("SKYBYTE_SIM_LANES", value, 1);
    }
};

TEST(ResolvedKernelLanes, ConfigKnobAndEnvOverride)
{
    LanesEnvGuard env;
    KernelConfig cfg;
    EXPECT_EQ(resolvedKernelLanes(cfg), 1u);
    cfg.lanes = 8;
    EXPECT_EQ(resolvedKernelLanes(cfg), 8u);
    env.set("2");
    EXPECT_EQ(resolvedKernelLanes(cfg), 2u);
    env.set("");
    EXPECT_EQ(resolvedKernelLanes(cfg), 8u); // empty = unset
}

TEST(ResolvedKernelLanes, RejectsGarbageAndOutOfRange)
{
    LanesEnvGuard env;
    KernelConfig cfg;
    for (const char *bad : {"0", "65", "abc", "4x", "-1", " 4"}) {
        SCOPED_TRACE(bad);
        env.set(bad);
        EXPECT_THROW(resolvedKernelLanes(cfg), std::invalid_argument);
    }
}

// ---------------------------------------------------------------------
// LaneBatchStager
// ---------------------------------------------------------------------

bool
sameRecord(const TraceRecord &a, const TraceRecord &b)
{
    return a.computeOps == b.computeOps && a.isWrite == b.isWrite
           && a.vaddr == b.vaddr;
}

TEST(LaneBatchStager, StagedStreamMatchesSerialRefill)
{
    WorkloadParams params;
    params.numThreads = 4;
    params.instrPerThread = 50'000;
    // Two independent instances of the same spec: one drained serially,
    // one through the stager. Their per-tid record streams must match
    // byte for byte.
    auto serial = makeWorkload("zipf", params);
    auto staged = makeWorkload("zipf", params);
    ASSERT_TRUE(serial->concurrentRefillSafe());

    std::vector<std::vector<TraceRecord>> want(4);
    TraceBatch batch;
    for (int tid = 0; tid < 4; ++tid) {
        while (std::uint32_t n = serial->refill(tid, batch)) {
            for (std::uint32_t i = 0; i < n; ++i)
                want[tid].push_back(batch.records[i]);
        }
    }

    LaneBatchStager stager(*staged, 3);
    EXPECT_EQ(stager.workers(), 3u);
    std::vector<std::vector<TraceRecord>> got(4);
    // Interleaved consumption, like four ThreadContexts taking turns.
    bool drained[4] = {};
    for (int live = 4; live > 0;) {
        for (int tid = 0; tid < 4; ++tid) {
            if (drained[tid])
                continue;
            const std::uint32_t n = stager.nextBatch(tid, batch);
            if (n == 0) {
                drained[tid] = true;
                --live;
                continue;
            }
            for (std::uint32_t i = 0; i < n; ++i)
                got[tid].push_back(batch.records[i]);
        }
    }
    stager.stop();

    for (int tid = 0; tid < 4; ++tid) {
        SCOPED_TRACE(tid);
        ASSERT_EQ(got[tid].size(), want[tid].size());
        for (std::size_t i = 0; i < want[tid].size(); ++i)
            ASSERT_TRUE(sameRecord(got[tid][i], want[tid][i])) << i;
        // Delivery-time accounting equals the serial emitted count once
        // the stream is fully consumed.
        EXPECT_EQ(stager.instructionsDelivered(tid),
                  serial->instructionsEmitted(tid));
    }
}

TEST(LaneBatchStager, RejectsUnsafeWorkloads)
{
    WorkloadParams params;
    params.numThreads = 2;
    params.instrPerThread = 1000;
    // The one-record-per-batch wrapper keeps the conservative default
    // (concurrentRefillSafe() == false), so staging must refuse it.
    SingleRecordWorkload unsafe(makeWorkload("zipf", params));
    ASSERT_FALSE(unsafe.concurrentRefillSafe());
    EXPECT_THROW(LaneBatchStager(unsafe, 2), std::logic_error);
}

// ---------------------------------------------------------------------
// End-to-end fingerprints
// ---------------------------------------------------------------------

SimConfig
laneTestConfig(const std::string &variant)
{
    SimConfig cfg = makeConfig(variant);
    cfg.cpu.l1d.sizeBytes = 16 * 1024;
    cfg.cpu.l2.sizeBytes = 64 * 1024;
    cfg.cpu.llc.sizeBytes = 1024 * 1024;
    cfg.ssdCache.writeLogBytes = 512 * 1024;
    cfg.ssdCache.dataCacheBytes = 3584 * 1024;
    cfg.hostMem.promotedBytesMax = 16ULL * 1024 * 1024;
    return cfg;
}

/**
 * The PR's acceptance gate: the `lanes` knob must be invisible in the
 * results. Every (workload, variant) fingerprint at lanes in {2,4,8}
 * must be byte-identical to the lanes=1 run — toJson includes every
 * counter in SimResult, so one drifting stat fails the string compare.
 */
TEST(LaneFingerprint, LanesKnobIsResultInvariant)
{
    ExperimentOptions opt;
    opt.instrPerThread = 20'000;
    opt.footprintBytes = 32ULL * 1024 * 1024;
    for (const char *workload : {"zipf", "scan", "ptrchase"}) {
        for (const char *variant : {"SkyByte-Full", "Base-CSSD"}) {
            SCOPED_TRACE(std::string(workload) + " / " + variant);
            SimConfig cfg = laneTestConfig(variant);
            cfg.kernel.lanes = 1;
            const std::string reference =
                toJson(runConfig(cfg, workload, opt));
            for (const std::uint32_t lanes : {2u, 4u, 8u}) {
                SCOPED_TRACE(lanes);
                cfg.kernel.lanes = lanes;
                EXPECT_EQ(toJson(runConfig(cfg, workload, opt)),
                          reference);
            }
        }
    }
}

TEST(LaneFingerprint, EnvOverrideIsResultInvariant)
{
    ExperimentOptions opt;
    opt.instrPerThread = 20'000;
    opt.footprintBytes = 32ULL * 1024 * 1024;
    SimConfig cfg = laneTestConfig("SkyByte-Full");
    const std::string reference = toJson(runConfig(cfg, "zipf", opt));
    LanesEnvGuard env;
    env.set("4");
    EXPECT_EQ(toJson(runConfig(cfg, "zipf", opt)), reference);
}

} // namespace
} // namespace skybyte
