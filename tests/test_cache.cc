/**
 * @file
 * Unit tests for the set-associative cache and MSHR file: hit/miss, true
 * LRU eviction, dirty writebacks with functional values, invalidation,
 * and MSHR capacity/coalescing.
 */

#include <gtest/gtest.h>

#include "cpu/cache.h"

namespace skybyte {
namespace {

Addr
line(std::uint64_t i)
{
    return i * kCachelineBytes;
}

TEST(SetAssocCache, MissThenHitAfterFill)
{
    SetAssocCache c(4096, 4);
    EXPECT_FALSE(c.access(line(1), false));
    c.fill(line(1), false);
    EXPECT_TRUE(c.access(line(1), false));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssocCache, LruEvictsOldest)
{
    // Single-set cache: 4 lines, 4 ways.
    SetAssocCache c(4 * kCachelineBytes, 4);
    ASSERT_EQ(c.numSets(), 1u);
    for (std::uint64_t i = 0; i < 4; ++i)
        c.fill(line(i), false);
    c.access(line(0), false); // refresh 0; line 1 is now LRU
    CacheResult r = c.fill(line(10), false);
    EXPECT_FALSE(r.writeback); // victim was clean
    EXPECT_FALSE(c.probe(line(1)));
    EXPECT_TRUE(c.probe(line(0)));
}

TEST(SetAssocCache, DirtyVictimWritesBackWithValue)
{
    SetAssocCache c(4 * kCachelineBytes, 4);
    for (std::uint64_t i = 0; i < 4; ++i)
        c.fill(line(i), false);
    c.access(line(2), true, 0xbeef);
    c.access(line(0), false);
    c.access(line(1), false);
    c.access(line(3), false);
    // line 2 is LRU and dirty.
    CacheResult r = c.fill(line(20), false);
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimAddr, line(2));
    EXPECT_EQ(r.victimValue, 0xbeefu);
}

TEST(SetAssocCache, WriteSetsValueReadReturnsIt)
{
    SetAssocCache c(4096, 4);
    c.fill(line(5), true, 111);
    LineValue v = 0;
    EXPECT_TRUE(c.access(line(5), false, 0, &v));
    EXPECT_EQ(v, 111u);
    c.access(line(5), true, 222);
    EXPECT_TRUE(c.access(line(5), false, 0, &v));
    EXPECT_EQ(v, 222u);
}

TEST(SetAssocCache, FillExistingUpgradesDirty)
{
    SetAssocCache c(4096, 4);
    c.fill(line(7), false);
    CacheResult r = c.fill(line(7), true, 9);
    EXPECT_TRUE(r.hit);
    bool was_dirty = false;
    EXPECT_TRUE(c.invalidate(line(7), &was_dirty));
    EXPECT_TRUE(was_dirty);
}

TEST(SetAssocCache, InvalidateRemovesLine)
{
    SetAssocCache c(4096, 4);
    c.fill(line(3), false);
    EXPECT_TRUE(c.invalidate(line(3)));
    EXPECT_FALSE(c.probe(line(3)));
    EXPECT_FALSE(c.invalidate(line(3)));
}

TEST(SetAssocCache, ClearEmptiesCache)
{
    SetAssocCache c(4096, 4);
    for (std::uint64_t i = 0; i < 32; ++i)
        c.fill(line(i), true, i);
    c.clear();
    for (std::uint64_t i = 0; i < 32; ++i)
        EXPECT_FALSE(c.probe(line(i)));
}

TEST(SetAssocCache, CapacityHonoured)
{
    // 64 lines; fill 128 distinct lines; at most 64 can remain.
    SetAssocCache c(64 * kCachelineBytes, 8);
    for (std::uint64_t i = 0; i < 128; ++i)
        c.fill(line(i), false);
    int resident = 0;
    for (std::uint64_t i = 0; i < 128; ++i)
        resident += c.probe(line(i)) ? 1 : 0;
    EXPECT_LE(resident, 64);
    EXPECT_GT(resident, 32); // hashing should spread reasonably
}

TEST(MshrFile, CapacityAndRelease)
{
    MshrFile m(2);
    EXPECT_TRUE(m.allocate(line(1)));
    EXPECT_TRUE(m.allocate(line(2)));
    EXPECT_TRUE(m.full());
    EXPECT_FALSE(m.allocate(line(3)));
    m.release(line(1));
    EXPECT_FALSE(m.full());
    EXPECT_TRUE(m.allocate(line(3)));
}

TEST(MshrFile, NoDuplicateEntries)
{
    MshrFile m(4);
    EXPECT_TRUE(m.allocate(line(1)));
    EXPECT_TRUE(m.contains(line(1)));
    EXPECT_FALSE(m.allocate(line(1))); // coalesce, not allocate
    EXPECT_EQ(m.occupancy(), 1u);
}

TEST(MshrFile, ReleaseIsIdempotent)
{
    MshrFile m(4);
    m.allocate(line(1));
    m.release(line(1));
    m.release(line(1));
    EXPECT_EQ(m.occupancy(), 0u);
}

} // namespace
} // namespace skybyte
