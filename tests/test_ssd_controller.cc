/**
 * @file
 * Tests for the SSD controller: the full read/write paths of Figure 11
 * (R1-R3, W1-W3), SkyByte-Delay hint decisions (Algorithm 1), log
 * compaction with write coalescing (Figure 13), Base-CSSD
 * read-modify-write and dirty evictions, and functional read-your-write
 * integrity in both modes.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/ssd_controller.h"

namespace skybyte {
namespace {

SimConfig
deviceConfig(bool write_log, bool ctx_switch)
{
    SimConfig cfg;
    cfg.policy.writeLogEnable = write_log;
    cfg.policy.deviceTriggeredCtxSwitch = ctx_switch;
    cfg.flash.channels = 2;
    cfg.flash.chipsPerChannel = 2;
    cfg.flash.diesPerChip = 2;
    cfg.flash.blocksPerPlane = 4;
    cfg.flash.pagesPerBlock = 16;
    cfg.ssdCache.writeLogBytes = 16 * kCachelineBytes;
    cfg.ssdCache.dataCacheBytes = 8 * kPageBytes;
    cfg.ssdCache.baseCssdPrefetch = false; // determinism in unit tests
    return cfg;
}

struct Device
{
    explicit Device(const SimConfig &config)
        : cfg(config), link(eq, cfg.cxl), ssd(cfg, eq, link)
    {}

    /** Blocking read helper: runs the queue until the response. */
    MemResponse
    readSync(Addr addr)
    {
        MemResponse out;
        bool done = false;
        ssd.read(addr, eq.now(), [&](const MemResponse &r) {
            out = r;
            done = true;
        });
        while (!done && eq.step()) {
        }
        return out;
    }

    SimConfig cfg;
    EventQueue eq;
    CxlLink link;
    SsdController ssd;
};

TEST(SsdController, ReadMissFetchesFromFlash)
{
    Device dev(deviceConfig(true, false));
    const MemResponse r = dev.readSync(0);
    EXPECT_EQ(r.kind, MemResponseKind::Data);
    EXPECT_EQ(dev.ssd.stats().readMisses, 1u);
    // Latency must include the flash read (>= 3 us).
    EXPECT_GT(dev.eq.now(), usToTicks(3.0));
}

TEST(SsdController, SecondReadHitsDataCache)
{
    Device dev(deviceConfig(true, false));
    dev.readSync(0);
    const Tick before = dev.eq.now();
    dev.readSync(kCachelineBytes); // same page, different line
    EXPECT_EQ(dev.ssd.stats().readHitsCache, 1u);
    EXPECT_LT(dev.eq.now() - before, usToTicks(1.0));
}

TEST(SsdController, WriteLogReadYourWrite)
{
    Device dev(deviceConfig(true, false));
    dev.ssd.write(5 * kPageBytes + 2 * kCachelineBytes, 999, 0);
    dev.eq.run();
    const MemResponse r =
        dev.readSync(5 * kPageBytes + 2 * kCachelineBytes);
    EXPECT_EQ(r.value, 999u);
    EXPECT_EQ(dev.ssd.stats().readHitsLog, 1u);
    EXPECT_EQ(dev.ssd.stats().writes, 1u);
}

TEST(SsdController, LogValueShadowsStaleCachedPage)
{
    Device dev(deviceConfig(true, false));
    dev.readSync(7 * kPageBytes); // page cached (all zeros)
    dev.ssd.write(7 * kPageBytes, 31337, dev.eq.now());
    dev.eq.run();
    const MemResponse r = dev.readSync(7 * kPageBytes);
    EXPECT_EQ(r.value, 31337u);
}

TEST(SsdController, CompactionCoalescesAndPreservesData)
{
    Device dev(deviceConfig(true, false));
    // 16-entry log: write the same line 16 times -> compaction flushes
    // exactly one page despite 16 appends.
    for (int i = 0; i < 16; ++i) {
        dev.ssd.write(3 * kPageBytes, 1000 + i, dev.eq.now());
        dev.eq.run();
    }
    dev.eq.run();
    EXPECT_EQ(dev.ssd.stats().compactionRuns, 1u);
    EXPECT_EQ(dev.ssd.stats().compactionPagesFlushed, 1u);
    EXPECT_EQ(dev.ssd.writeLog()->stats().updateHits, 15u);
    // The flash copy holds the newest value.
    EXPECT_EQ(dev.ssd.ftl().pageData(3)[0], 1015u);
    const MemResponse r = dev.readSync(3 * kPageBytes);
    EXPECT_EQ(r.value, 1015u);
}

TEST(SsdController, CompactionFullyDirtyPageSkipsFlashRead)
{
    Device dev(deviceConfig(true, false));
    SimConfig cfg = deviceConfig(true, false);
    cfg.ssdCache.writeLogBytes = 64 * kCachelineBytes;
    cfg.ssdCache.dataCacheBytes = 2 * kPageBytes; // page won't be cached
    Device dev2(cfg);
    // Dirty every line of one page not resident in the tiny cache.
    for (std::uint32_t off = 0; off < kLinesPerPage; ++off) {
        dev2.ssd.write(11 * kPageBytes + off * kCachelineBytes, off,
                       dev2.eq.now());
        dev2.eq.run();
    }
    dev2.eq.run();
    EXPECT_EQ(dev2.ssd.stats().compactionRuns, 1u);
    EXPECT_EQ(dev2.ssd.stats().compactionFlashReads, 0u);
    EXPECT_EQ(dev2.ssd.ftl().pageData(11)[63], 63u);
}

TEST(SsdController, BaseCssdWriteMissDoesRmw)
{
    Device dev(deviceConfig(false, false));
    dev.ssd.write(9 * kPageBytes, 55, 0);
    dev.eq.run();
    EXPECT_EQ(dev.ssd.stats().rmwFetches, 1u);
    // After the RMW fetch, the write is in the cached page.
    const MemResponse r = dev.readSync(9 * kPageBytes);
    EXPECT_EQ(r.value, 55u);
}

TEST(SsdController, BaseCssdDirtyEvictionPrograms)
{
    SimConfig cfg = deviceConfig(false, false);
    cfg.ssdCache.dataCacheBytes = 2 * kPageBytes; // 2-page cache
    cfg.ssdCache.dataCacheWays = 2;
    Device dev(cfg);
    dev.ssd.write(1 * kPageBytes, 7, 0);
    dev.eq.run();
    // Evict page 1 by filling the cache with reads.
    for (std::uint64_t lpn = 2; lpn < 8; ++lpn)
        dev.readSync(lpn * kPageBytes);
    dev.eq.run();
    EXPECT_GT(dev.ssd.stats().dirtyEvictions, 0u);
    EXPECT_GT(dev.ssd.ftl().stats().hostPrograms, 0u);
    // Data survives the round trip through flash.
    const MemResponse r = dev.readSync(1 * kPageBytes);
    EXPECT_EQ(r.value, 7u);
}

TEST(SsdController, ColdMissHintsWhenSwitchingEnabled)
{
    // Flash read (~4 us) exceeds the 2 us threshold: hint expected.
    Device dev(deviceConfig(true, true));
    const MemResponse r = dev.readSync(0);
    EXPECT_EQ(r.kind, MemResponseKind::DelayHint);
    EXPECT_EQ(dev.ssd.stats().delayHintsSent, 1u);
    // The page fetch continues in the background; a later read hits.
    dev.eq.run();
    const MemResponse r2 = dev.readSync(0);
    EXPECT_EQ(r2.kind, MemResponseKind::Data);
}

TEST(SsdController, NoHintWhenSwitchingDisabled)
{
    Device dev(deviceConfig(true, false));
    const MemResponse r = dev.readSync(0);
    EXPECT_EQ(r.kind, MemResponseKind::Data);
    EXPECT_EQ(dev.ssd.stats().delayHintsSent, 0u);
}

TEST(SsdController, HighThresholdSuppressesHints)
{
    SimConfig cfg = deviceConfig(true, true);
    cfg.policy.csThreshold = usToTicks(80.0);
    Device dev(cfg);
    const MemResponse r = dev.readSync(0);
    EXPECT_EQ(r.kind, MemResponseKind::Data);
}

TEST(SsdController, WritesNeverHint)
{
    Device dev(deviceConfig(true, true));
    dev.ssd.write(0, 1, 0); // would miss; must not produce a hint
    dev.eq.run();
    EXPECT_EQ(dev.ssd.stats().delayHintsSent, 0u);
}

TEST(SsdController, MigrationDropInvalidatesLogAndCache)
{
    Device dev(deviceConfig(true, false));
    dev.readSync(4 * kPageBytes);
    dev.ssd.write(4 * kPageBytes, 77, dev.eq.now());
    dev.eq.run();
    PageData snap = dev.ssd.snapshotPage(4);
    EXPECT_EQ(snap[0], 77u);
    dev.ssd.dropMigratedPage(4);
    EXPECT_FALSE(dev.ssd.isPageCached(4));
    EXPECT_FALSE(dev.ssd.writeLog()->lookup(4 * kPageBytes).has_value());
}

TEST(SsdController, PageInterfaceRoundTrip)
{
    Device dev(deviceConfig(false, false));
    PageData data{};
    data[5] = 505;
    dev.ssd.writePageFromHost(6, data, 0);
    dev.eq.run();
    PageData got{};
    bool done = false;
    dev.ssd.readPageToHost(6, dev.eq.now(),
                           [&](Tick, const PageData &d) {
                               got = d;
                               done = true;
                           });
    while (!done && dev.eq.step()) {
    }
    EXPECT_EQ(got[5], 505u);
}

TEST(SsdController, WarmFillMakesPageHitWithoutFlashOps)
{
    Device dev(deviceConfig(true, false));
    dev.ssd.warmFill(12);
    EXPECT_TRUE(dev.ssd.isPageCached(12));
    EXPECT_EQ(dev.ssd.ftl().totalReads(), 0u);
    dev.readSync(12 * kPageBytes);
    EXPECT_EQ(dev.ssd.stats().readHitsCache, 1u);
}

/** Property: controller returns the latest written value (both modes). */
class SsdIntegrity
    : public ::testing::TestWithParam<std::pair<bool, std::uint64_t>>
{};

TEST_P(SsdIntegrity, ReadYourWritesUnderRandomTraffic)
{
    const auto [write_log, seed] = GetParam();
    Device dev(deviceConfig(write_log, false));
    Rng rng(seed);
    std::map<Addr, LineValue> ref;
    for (int i = 0; i < 600; ++i) {
        const Addr addr = rng.below(16) * kPageBytes
                          + rng.below(kLinesPerPage) * kCachelineBytes;
        if (rng.chance(0.5)) {
            const LineValue v = rng.next() | 1;
            dev.ssd.write(addr, v, dev.eq.now());
            dev.eq.run();
            ref[addr] = v;
        } else {
            const MemResponse r = dev.readSync(addr);
            auto it = ref.find(addr);
            EXPECT_EQ(r.value, it == ref.end() ? 0u : it->second)
                << "addr " << std::hex << addr;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SsdIntegrity,
    ::testing::Values(std::pair<bool, std::uint64_t>{true, 1},
                      std::pair<bool, std::uint64_t>{true, 2},
                      std::pair<bool, std::uint64_t>{true, 3},
                      std::pair<bool, std::uint64_t>{false, 1},
                      std::pair<bool, std::uint64_t>{false, 2},
                      std::pair<bool, std::uint64_t>{false, 3}));

} // namespace
} // namespace skybyte
