/**
 * @file
 * Tests for the AstriFlash-CXL baseline (§VI-H): host page cache
 * hits/misses, page-granular SSD fills, dirty writebacks, user-level
 * switch hints, and functional integrity through the host cache.
 */

#include <gtest/gtest.h>

#include "core/astriflash.h"

namespace skybyte {
namespace {

SimConfig
astriConfig(bool switching, std::uint64_t host_pages = 8)
{
    SimConfig cfg;
    cfg.policy.promotionEnable = true;
    cfg.policy.migration = MigrationMechanism::AstriFlash;
    cfg.policy.deviceTriggeredCtxSwitch = switching;
    cfg.flash.channels = 2;
    cfg.flash.chipsPerChannel = 2;
    cfg.flash.diesPerChip = 2;
    cfg.flash.blocksPerPlane = 4;
    cfg.flash.pagesPerBlock = 16;
    cfg.ssdCache.baseCssdPrefetch = false;
    cfg.hostMem.promotedBytesMax = host_pages * kPageBytes;
    return cfg;
}

struct AstriFixture
{
    explicit AstriFixture(const SimConfig &config)
        : cfg(config), link(eq, cfg.cxl), ssd(cfg, eq, link),
          host(eq, cfg.hostDram), astri(cfg, eq, ssd, host)
    {}

    MemResponse
    readSync(Addr addr)
    {
        MemResponse out;
        bool done = false;
        astri.read(addr, eq.now(), [&](const MemResponse &r) {
            out = r;
            done = true;
        });
        while (!done && eq.step()) {
        }
        return out;
    }

    SimConfig cfg;
    EventQueue eq;
    CxlLink link;
    SsdController ssd;
    DramModel host;
    AstriFlashCache astri;
};

TEST(AstriFlash, MissFillsFromSsdThenHits)
{
    AstriFixture fx(astriConfig(false));
    const MemResponse r1 = fx.readSync(0);
    EXPECT_EQ(r1.kind, MemResponseKind::Data);
    EXPECT_EQ(fx.astri.stats().hostMisses, 1u);
    EXPECT_EQ(fx.astri.stats().pageFills, 1u);
    const MemResponse r2 = fx.readSync(kCachelineBytes);
    EXPECT_EQ(r2.kind, MemResponseKind::Data);
    EXPECT_EQ(fx.astri.stats().hostHits, 1u);
}

TEST(AstriFlash, MissEmitsUserSwitchHintWhenEnabled)
{
    AstriFixture fx(astriConfig(true));
    const MemResponse r = fx.readSync(0);
    EXPECT_EQ(r.kind, MemResponseKind::DelayHint);
    EXPECT_EQ(fx.astri.stats().userSwitchHints, 1u);
    // Fill completes in the background; the replay hits host DRAM.
    fx.eq.run();
    const MemResponse r2 = fx.readSync(0);
    EXPECT_EQ(r2.kind, MemResponseKind::Data);
}

TEST(AstriFlash, WriteAllocatesAndMergesIntoFill)
{
    AstriFixture fx(astriConfig(false));
    fx.astri.write(3 * kPageBytes + 2 * kCachelineBytes, 321, 0);
    fx.eq.run();
    const MemResponse r =
        fx.readSync(3 * kPageBytes + 2 * kCachelineBytes);
    EXPECT_EQ(r.value, 321u);
}

TEST(AstriFlash, DirtyEvictionWritesWholePageToSsd)
{
    AstriFixture fx(astriConfig(false, 2)); // 2-page host cache
    fx.astri.write(0, 111, 0);
    fx.eq.run();
    // Evict page 0 with read traffic.
    for (std::uint64_t lpn = 1; lpn < 12; ++lpn) {
        fx.readSync(lpn * kPageBytes);
        fx.eq.run();
    }
    EXPECT_GT(fx.astri.stats().dirtyWritebacks, 0u);
    // Value survived in the SSD.
    EXPECT_EQ(fx.astri.peekLine(0), 111u);
}

TEST(AstriFlash, SsdSeesOnlyPageGranularTraffic)
{
    AstriFixture fx(astriConfig(false));
    fx.readSync(5 * kPageBytes);
    fx.astri.write(5 * kPageBytes, 9, fx.eq.now());
    fx.eq.run();
    // No cacheline-level SSD reads/writes happened.
    EXPECT_EQ(fx.ssd.stats().writes, 0u);
    EXPECT_EQ(fx.ssd.stats().readHitsLog, 0u);
}

} // namespace
} // namespace skybyte
