/**
 * @file
 * Tests for the Promotion Look-aside Buffer (§III-C, §IV): flat 4 KB
 * entries, the two-level huge-page extension, in-order chunk migration,
 * capacity accounting, and the hardware-cost model.
 */

#include <gtest/gtest.h>

#include "core/plb.h"

namespace skybyte {
namespace {

TEST(Plb, AllocateFindRelease)
{
    Plb plb(4);
    Plb::Entry *e = plb.allocate(10, 1);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->baseLpn, 10u);
    EXPECT_EQ(plb.occupancy(), 1u);
    EXPECT_EQ(plb.find(10), e);
    EXPECT_EQ(plb.find(11), nullptr);
    plb.release(10);
    EXPECT_EQ(plb.find(10), nullptr);
    EXPECT_EQ(plb.occupancy(), 0u);
    EXPECT_EQ(plb.stats().releases, 1u);
}

TEST(Plb, CapacityRejectsWhenFull)
{
    Plb plb(2);
    EXPECT_NE(plb.allocate(0, 1), nullptr);
    EXPECT_NE(plb.allocate(1, 1), nullptr);
    EXPECT_TRUE(plb.full());
    EXPECT_EQ(plb.allocate(2, 1), nullptr);
    EXPECT_EQ(plb.stats().rejectedFull, 1u);
    EXPECT_EQ(plb.stats().peakOccupancy, 2u);
    plb.release(0);
    EXPECT_FALSE(plb.full());
    EXPECT_NE(plb.allocate(2, 1), nullptr);
}

TEST(Plb, DuplicateAllocateRefused)
{
    Plb plb(4);
    ASSERT_NE(plb.allocate(7, 1), nullptr);
    EXPECT_EQ(plb.allocate(7, 1), nullptr);
    EXPECT_EQ(plb.occupancy(), 1u);
}

TEST(Plb, FlatEntryCompletesAfterAllLines)
{
    Plb plb(1);
    Plb::Entry *e = plb.allocate(3, 1);
    ASSERT_NE(e, nullptr);
    for (std::uint32_t line = 0; line + 1 < kLinesPerPage; ++line) {
        EXPECT_FALSE(plb.markLine(*e, 0, line));
        EXPECT_TRUE(e->lineMigrated(0, line));
        EXPECT_FALSE(e->lineMigrated(0, line + 1));
    }
    EXPECT_TRUE(plb.markLine(*e, 0, kLinesPerPage - 1));
    EXPECT_EQ(plb.stats().lineCopies, kLinesPerPage);
    EXPECT_EQ(plb.stats().chunkCompletions, 1u);
}

TEST(Plb, FlatEntryHardwareCostIs24Bytes)
{
    Plb plb(1);
    Plb::Entry *e = plb.allocate(0, 1);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->hardwareBytes(), 24u); // 8B src + 8B dst + 8B bitmap
    EXPECT_FALSE(e->huge());
}

TEST(Plb, HugeEntryCoversWholeRegion)
{
    Plb plb(1);
    Plb::Entry *e = plb.allocate(512, 512); // one 2 MB page
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->huge());
    // Every 4 KB page of the region resolves to the same entry.
    EXPECT_EQ(plb.find(512), e);
    EXPECT_EQ(plb.find(700), e);
    EXPECT_EQ(plb.find(1023), e);
    EXPECT_EQ(plb.find(1024), nullptr);
    EXPECT_EQ(plb.find(511), nullptr);
    plb.release(512);
    EXPECT_EQ(plb.find(700), nullptr);
}

TEST(Plb, HugeEntryMigratesChunkByChunk)
{
    Plb plb(1);
    Plb::Entry *e = plb.allocate(0, 4);
    ASSERT_NE(e, nullptr);
    // Complete chunk 0.
    for (std::uint32_t line = 0; line < kLinesPerPage; ++line)
        EXPECT_FALSE(plb.markLine(*e, 0, line));
    EXPECT_EQ(e->chunksDone(), 1u);
    EXPECT_EQ(e->currentChunk, 1u);
    // All of chunk 0 reads as migrated via the first-level bitmap.
    EXPECT_TRUE(e->lineMigrated(0, 0));
    EXPECT_TRUE(e->lineMigrated(0, kLinesPerPage - 1));
    // Chunk 1 is in flight: partial.
    EXPECT_FALSE(plb.markLine(*e, 1, 5));
    EXPECT_TRUE(e->lineMigrated(1, 5));
    EXPECT_FALSE(e->lineMigrated(1, 6));
    // Chunk 2 has not started.
    EXPECT_FALSE(e->lineMigrated(2, 0));
}

TEST(Plb, HugeEntryOutOfOrderChunkIgnored)
{
    Plb plb(1);
    Plb::Entry *e = plb.allocate(0, 4);
    ASSERT_NE(e, nullptr);
    // §IV: a single second-level entry tracks only the current chunk, so
    // chunks must migrate in order; marks for other chunks are ignored.
    EXPECT_FALSE(plb.markLine(*e, 2, 0));
    EXPECT_FALSE(e->lineMigrated(2, 0));
    EXPECT_EQ(e->chunksDone(), 0u);
}

TEST(Plb, HugeEntryCompletesAfterAllChunks)
{
    Plb plb(1);
    Plb::Entry *e = plb.allocate(0, 3);
    ASSERT_NE(e, nullptr);
    bool done = false;
    for (std::uint32_t chunk = 0; chunk < 3; ++chunk)
        for (std::uint32_t line = 0; line < kLinesPerPage; ++line)
            done = plb.markLine(*e, chunk, line);
    EXPECT_TRUE(done);
    EXPECT_EQ(e->chunksDone(), 3u);
    EXPECT_EQ(plb.stats().chunkCompletions, 3u);
}

TEST(Plb, HugeEntryHardwareCostAddsFirstLevelBitmap)
{
    Plb plb(1);
    Plb::Entry *e = plb.allocate(0, 512);
    ASSERT_NE(e, nullptr);
    // Two-level entry (§IV): 64 B chunk bitmap + the flat 24 B — far
    // below the 4 KB a flat bitmap over 32,768 cachelines would need.
    EXPECT_EQ(e->hardwareBytes(), 88u);
}

TEST(Plb, OutOfRangeMarksIgnored)
{
    Plb plb(1);
    Plb::Entry *e = plb.allocate(0, 1);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(plb.markLine(*e, 0, kLinesPerPage)); // bad line
    EXPECT_FALSE(plb.markLine(*e, 1, 0));             // bad chunk
    EXPECT_FALSE(e->lineMigrated(0, kLinesPerPage));
    EXPECT_FALSE(e->lineMigrated(1, 0));
    EXPECT_EQ(plb.stats().lineCopies, 0u);
}

TEST(Plb, ReleaseUnknownBaseIsNoop)
{
    Plb plb(1);
    plb.release(99);
    EXPECT_EQ(plb.stats().releases, 0u);
}

} // namespace
} // namespace skybyte
