/**
 * @file
 * Tests for the §IV discussion features: data-persistence page pinning
 * (pinned pages never promoted off the battery-backed device), NUMA
 * support (remote sockets pay the inter-socket hop on CXL accesses,
 * with the same context-switch threshold everywhere), and end-to-end
 * runs with huge-page migration, banked DRAM timing, and the
 * active/inactive reclaim policy enabled together.
 */

#include <gtest/gtest.h>

#include "core/migration.h"
#include "sim/experiment.h"
#include "sim/system.h"

namespace skybyte {
namespace {

SimConfig
pinConfig()
{
    SimConfig cfg;
    cfg.policy.promotionEnable = true;
    cfg.policy.migration = MigrationMechanism::SkyByte;
    cfg.policy.hotPageThreshold = 2;
    cfg.flash.channels = 2;
    cfg.flash.chipsPerChannel = 2;
    cfg.flash.diesPerChip = 2;
    cfg.flash.blocksPerPlane = 4;
    cfg.flash.pagesPerBlock = 16;
    cfg.ssdCache.baseCssdPrefetch = false;
    cfg.hostMem.pinnedDeviceBytes = 4 * kPageBytes; // pages 0-3 pinned
    return cfg;
}

TEST(Pinning, PinnedPagesAreNeverPromoted)
{
    SimConfig cfg = pinConfig();
    EventQueue eq;
    CxlLink link(eq, cfg.cxl);
    SsdController ssd(cfg, eq, link);
    DramModel host(eq, cfg.hostDram);
    MigrationEngine engine(cfg, eq, ssd, host, link);

    ssd.warmFill(1); // pinned page, cached and hot
    ssd.warmFill(9); // unpinned page
    EXPECT_TRUE(engine.onHotPage(1, 0)); // accepted-but-latched
    EXPECT_TRUE(engine.onHotPage(9, 0));
    eq.run();
    EXPECT_FALSE(engine.isPromoted(1));
    EXPECT_TRUE(engine.isPromoted(9));
    EXPECT_EQ(engine.stats().promotions, 1u);
}

TEST(Pinning, TppAlsoRespectsPins)
{
    SimConfig cfg = pinConfig();
    cfg.policy.migration = MigrationMechanism::Tpp;
    EventQueue eq;
    CxlLink link(eq, cfg.cxl);
    SsdController ssd(cfg, eq, link);
    DramModel host(eq, cfg.hostDram);
    MigrationEngine engine(cfg, eq, ssd, host, link);
    for (int i = 0; i < 3000; ++i) {
        engine.onSsdAccess(2, 0); // pinned
        engine.onSsdAccess(8, 0); // unpinned
        eq.run();
    }
    EXPECT_FALSE(engine.isPromoted(2));
    EXPECT_TRUE(engine.isPromoted(8));
}

TEST(Pinning, EndToEndPinnedRangeStaysOnDevice)
{
    SimConfig cfg = makeConfig("SkyByte-Full");
    cfg.cpu.llc.sizeBytes = 1024 * 1024;
    cfg.policy.hotPageThreshold = 8;
    ExperimentOptions opt;
    opt.instrPerThread = 25'000;
    opt.footprintBytes = 16ULL * 1024 * 1024;
    // Pin the whole footprint: no promotions can happen at all.
    cfg.hostMem.pinnedDeviceBytes = opt.footprintBytes;
    SimResult res = runConfig(cfg, "ycsb", opt);
    EXPECT_EQ(res.promotions, 0u);

    // Unpinned control run promotes.
    cfg.hostMem.pinnedDeviceBytes = 0;
    SimResult control = runConfig(cfg, "ycsb", opt);
    EXPECT_GT(control.promotions, 0u);
}

TEST(Numa, RemoteSocketsPayTheHop)
{
    // All cores remote from the SSD's home socket vs all local: the
    // remote configuration must be slower by roughly the hop cost per
    // CXL access.
    ExperimentOptions opt;
    opt.instrPerThread = 20'000;
    opt.footprintBytes = 16ULL * 1024 * 1024;

    SimConfig local = makeConfig("Base-CSSD");
    local.cpu.llc.sizeBytes = 1024 * 1024;
    local.numa.sockets = 2;
    local.numa.ssdHomeSocket = 0;

    SimConfig remote = local;
    remote.numa.ssdHomeSocket = 5; // no core block maps to socket 5

    const SimResult local_res = runConfig(local, "uniform", opt);
    const SimResult remote_res = runConfig(remote, "uniform", opt);
    EXPECT_GT(remote_res.execTime, local_res.execTime);
}

TEST(Numa, SingleSocketHasNoPenalty)
{
    SimConfig cfg;
    cfg.numa.sockets = 1;
    System sys(cfg, "uniform", WorkloadParams{1, 1000, 1 << 20, 1});
    EXPECT_EQ(sys.numaPenalty(0), 0u);
    EXPECT_EQ(sys.numaPenalty(7), 0u);
}

TEST(Numa, SocketAssignmentIsContiguousBlocks)
{
    SimConfig cfg;
    cfg.cpu.numCores = 8;
    cfg.numa.sockets = 2;
    cfg.numa.ssdHomeSocket = 0;
    System sys(cfg, "uniform", WorkloadParams{1, 1000, 1 << 20, 1});
    // Cores 0-3 on socket 0 (home, free); cores 4-7 on socket 1 (hop).
    for (int c = 0; c < 4; ++c)
        EXPECT_EQ(sys.numaPenalty(c), 0u) << c;
    for (int c = 4; c < 8; ++c)
        EXPECT_EQ(sys.numaPenalty(c), cfg.numa.interSocketLatency) << c;
}

TEST(HugePages, EndToEndRunCompletesAndMigratesRegions)
{
    SimConfig cfg = makeBenchConfig("SkyByte-Full");
    cfg.hostMem.hugePageBytes = 64 * 1024; // 16-page regions
    cfg.policy.hotPageThreshold = 8;
    ExperimentOptions opt;
    opt.instrPerThread = 30'000;
    System sys(cfg, "ycsb", makeParams(cfg, opt));
    const SimResult res = sys.run(kTickMax);
    ASSERT_FALSE(res.timedOut);
    EXPECT_GT(res.committedInstructions, 0u);
    // Promotions are counted per region; every promotion moved 16
    // pages, so the host share of traffic should be visible.
    if (res.promotions > 0) {
        EXPECT_GT(res.hostReads + res.hostWrites, 0u);
    }
}

TEST(HugePages, SameWorkRegardlessOfGranularity)
{
    ExperimentOptions opt;
    opt.instrPerThread = 20'000;
    std::uint64_t committed4k = 0;
    for (const std::uint64_t huge : {std::uint64_t{0},
                                     std::uint64_t{64 * 1024}}) {
        SimConfig cfg = makeBenchConfig("SkyByte-Full");
        cfg.hostMem.hugePageBytes = huge;
        System sys(cfg, "bc", makeParams(cfg, opt));
        const SimResult res = sys.run(kTickMax);
        ASSERT_FALSE(res.timedOut);
        if (huge == 0)
            committed4k = res.committedInstructions;
        else
            EXPECT_EQ(res.committedInstructions, committed4k);
    }
}

TEST(Extensions, AllSectionFourFeaturesComposeInOneRun)
{
    // Pinning + NUMA + huge pages + banked DRAM + active/inactive
    // reclaim, all at once: the features must not interfere.
    SimConfig cfg = makeBenchConfig("SkyByte-Full");
    cfg.hostMem.pinnedDeviceBytes = 1 << 20;
    cfg.hostMem.hugePageBytes = 64 * 1024;
    cfg.hostMem.reclaim = ReclaimPolicy::ActiveInactive;
    cfg.hostDram.bank = ddr5BankTiming();
    cfg.ssdDram.bank = lpddr4BankTiming();
    cfg.numa.sockets = 2;
    ExperimentOptions opt;
    opt.instrPerThread = 20'000;
    System sys(cfg, "tpcc", makeParams(cfg, opt));
    const SimResult res = sys.run(kTickMax);
    ASSERT_FALSE(res.timedOut);
    EXPECT_GT(res.committedInstructions, 0u);
}

} // namespace
} // namespace skybyte
