/**
 * @file
 * Tests for the core model + uncore against a scripted memory backend:
 * ROB-window stalls, MLP limited by L1 MSHRs, LLC-level coalescing,
 * memory-bound accounting, and the coordinated context switch path
 * (hint -> Long Delay Exception -> squash -> replay, §III-A C1-C4).
 */

#include <gtest/gtest.h>

#include "common/event_queue.h"
#include "core/os.h"
#include "cpu/core.h"
#include "cpu/uncore.h"
#include "trace/workload.h"

namespace skybyte {
namespace {

/** Backend with programmable latency that can emit DelayHints. */
class ScriptedBackend : public MemoryBackend
{
  public:
    explicit ScriptedBackend(EventQueue &eq) : eq_(eq) {}

    void
    read(const MemRequest &req, Tick when, MemCallback cb) override
    {
        reads_++;
        if (hintAll) {
            MemResponse resp;
            resp.kind = MemResponseKind::DelayHint;
            resp.lineAddr = req.lineAddr;
            eq_.schedule(when + hintLatency,
                         [cb = std::move(cb), resp]() mutable { cb(resp); });
            return;
        }
        MemResponse resp;
        resp.kind = MemResponseKind::Data;
        resp.lineAddr = req.lineAddr;
        eq_.schedule(when + dataLatency,
                     [cb = std::move(cb), resp]() mutable { cb(resp); });
    }

    void
    write(const MemRequest &, Tick) override
    {
        writes_++;
    }

    EventQueue &eq_;
    Tick dataLatency = nsToTicks(1000.0);
    Tick hintLatency = nsToTicks(100.0);
    bool hintAll = false;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

/** Fixed sequential single-thread workload: strided cold loads. */
class StrideWorkload : public Workload
{
  public:
    StrideWorkload(std::uint64_t records, std::uint32_t compute,
                   bool writes = false)
        : records_(records), compute_(compute), writes_(writes)
    {}

    std::string name() const override { return "stride"; }
    std::uint64_t footprintBytes() const override { return 1 << 30; }
    int numThreads() const override { return 1; }
    std::uint64_t instructionsEmitted(int) const override
    {
        return emitted_;
    }

    std::uint32_t
    refill(int, TraceBatch &batch) override
    {
        std::uint32_t n = 0;
        while (n < TraceBatch::kCapacity && produced_ < records_) {
            produced_++;
            TraceRecord &rec = batch.records[n++];
            rec.computeOps = compute_;
            rec.isWrite = writes_;
            rec.vaddr = kDataBase + produced_ * kPageBytes; // uncached
            emitted_ += compute_ + 1;
        }
        batch.count = n;
        batch.cursor = 0;
        return n;
    }

  private:
    std::uint64_t records_;
    std::uint32_t compute_;
    bool writes_;
    std::uint64_t produced_ = 0;
    std::uint64_t emitted_ = 0;
};

struct CoreFixture
{
    explicit CoreFixture(std::unique_ptr<Workload> wl,
                         PolicyConfig pol = {}, CpuConfig cpu_cfg = {})
        : workload(std::move(wl)), backend(eq), cpu(cpu_cfg),
          policy(pol), uncore(cpu, eq, backend), sched(pol.schedPolicy, 1)
    {
        core = std::make_unique<Core>(0, cpu, policy, eq, uncore);
        core->setScheduler(&sched);
        sched.setCores({core.get()});
        for (int t = 0; t < workload->numThreads(); ++t) {
            threads.push_back(std::make_unique<ThreadContext>(
                t, workload.get()));
            sched.addThread(threads.back().get());
        }
    }

    void
    run()
    {
        sched.start(0);
        while (!sched.allFinished() && eq.step()) {
        }
    }

    EventQueue eq;
    std::unique_ptr<Workload> workload;
    ScriptedBackend backend;
    CpuConfig cpu;
    PolicyConfig policy;
    Uncore uncore;
    CxlAwareScheduler sched;
    std::vector<std::unique_ptr<ThreadContext>> threads;
    std::unique_ptr<Core> core;
};

TEST(CoreModel, ExecutesAllInstructions)
{
    CoreFixture fx(std::make_unique<StrideWorkload>(200, 4));
    fx.run();
    EXPECT_TRUE(fx.sched.allFinished());
    EXPECT_EQ(fx.core->stats().committedInstructions, 200u * 5u);
}

TEST(CoreModel, MlpIsBoundedByMshrs)
{
    // 200 cold loads, 1 ms latency each, 8 L1 MSHRs: runtime must be
    // about (200/8) * latency, NOT 200 * latency (serial) and NOT one
    // latency (infinite MLP).
    CoreFixture fx(std::make_unique<StrideWorkload>(200, 0));
    fx.run();
    const double waves = 200.0 / fx.cpu.l1d.mshrs;
    const double expected =
        waves * static_cast<double>(fx.backend.dataLatency);
    const auto elapsed = static_cast<double>(fx.eq.now());
    EXPECT_GT(elapsed, expected * 0.8);
    EXPECT_LT(elapsed, expected * 1.6);
}

TEST(CoreModel, StallsAccountedAsMemoryBound)
{
    CoreFixture fx(std::make_unique<StrideWorkload>(100, 1));
    fx.run();
    const CoreStats &st = fx.core->stats();
    EXPECT_GT(st.memStallTicks, st.computeTicks * 10);
}

TEST(CoreModel, StoresDoNotStall)
{
    CoreFixture fx(std::make_unique<StrideWorkload>(500, 0, true));
    fx.run();
    // Stores allocate without fetching: total time is tiny.
    EXPECT_LT(fx.eq.now(), usToTicks(50.0));
    EXPECT_EQ(fx.backend.reads_, 0u);
}

TEST(CoreModel, DirtyEvictionsReachBackend)
{
    // Write more distinct lines than a shrunken hierarchy holds so the
    // dirty data cascades L1 -> L2 -> L3 -> backend.
    CpuConfig small;
    small.l1d.sizeBytes = 4 * 1024;
    small.l2.sizeBytes = 16 * 1024;
    small.llc.sizeBytes = 64 * 1024;
    CoreFixture fx(std::make_unique<StrideWorkload>(9000, 0, true), {},
                   small);
    fx.run();
    EXPECT_GT(fx.backend.writes_, 1000u);
}

TEST(CoreModel, HintTriggersContextSwitchAndReplay)
{
    PolicyConfig pol;
    pol.deviceTriggeredCtxSwitch = true;
    auto wl = std::make_unique<StrideWorkload>(50, 2);
    CoreFixture fx(std::move(wl), pol);
    fx.backend.hintAll = true;

    // Drive manually: with every read hinted and a single thread, the
    // scheduler hands the same thread back; each hinted record replays
    // and hints again, so the run would never end. Step a bounded time
    // and check the switch machinery engaged.
    fx.sched.start(0);
    const Tick limit = usToTicks(200.0);
    while (fx.eq.now() < limit && fx.eq.step()) {
    }
    EXPECT_GT(fx.core->stats().contextSwitches, 10u);
    EXPECT_GT(fx.core->stats().squashedRecords, 0u);
    EXPECT_GT(fx.core->stats().ctxSwitchTicks, 0u);
    // Each hinted access re-issues after resume (C4): reads exceed
    // context switches.
    EXPECT_GE(fx.backend.reads_, fx.core->stats().contextSwitches);
}

TEST(CoreModel, NoSwitchesWhenPolicyDisabled)
{
    PolicyConfig pol;
    pol.deviceTriggeredCtxSwitch = false;
    CoreFixture fx(std::make_unique<StrideWorkload>(50, 2), pol);
    fx.run();
    EXPECT_EQ(fx.core->stats().contextSwitches, 0u);
}

TEST(CoreModel, CoalescedMissesCompleteTogether)
{
    // Two loads to the same line: one backend read, both complete.
    class SameLine : public Workload
    {
      public:
        std::string name() const override { return "same"; }
        std::uint64_t footprintBytes() const override { return 1 << 20; }
        int numThreads() const override { return 1; }
        std::uint64_t instructionsEmitted(int) const override
        {
            return n_;
        }
        std::uint32_t
        refill(int, TraceBatch &batch) override
        {
            std::uint32_t filled = 0;
            while (filled < TraceBatch::kCapacity && n_ < 2) {
                n_++;
                batch.records[filled++] = {0, false, kDataBase};
            }
            batch.count = filled;
            batch.cursor = 0;
            return filled;
        }

      private:
        std::uint64_t n_ = 0;
    };
    CoreFixture fx(std::make_unique<SameLine>());
    fx.run();
    EXPECT_EQ(fx.backend.reads_, 1u);
    EXPECT_EQ(fx.core->stats().committedInstructions, 2u);
}

TEST(CoreModel, PenaltyDelaysExecution)
{
    auto wl = std::make_unique<StrideWorkload>(10, 0);
    CoreFixture fast(std::move(wl));
    fast.run();
    const Tick base_time = fast.eq.now();

    auto wl2 = std::make_unique<StrideWorkload>(10, 0);
    CoreFixture slow(std::move(wl2));
    slow.core->addPenalty(usToTicks(100.0));
    slow.run();
    EXPECT_GE(slow.eq.now(), base_time + usToTicks(100.0) / 2);
}

TEST(CoreModel, MultiThreadSharesCore)
{
    // Two threads on one core, no switching: the second runs after the
    // first finishes.
    class TwoThreads : public Workload
    {
      public:
        std::string name() const override { return "two"; }
        std::uint64_t footprintBytes() const override { return 1 << 20; }
        int numThreads() const override { return 2; }
        std::uint64_t instructionsEmitted(int t) const override
        {
            return n_[t];
        }
        std::uint32_t
        refill(int t, TraceBatch &batch) override
        {
            std::uint32_t filled = 0;
            while (filled < TraceBatch::kCapacity && n_[t] < 20) {
                batch.records[filled++] =
                    {3, false,
                     kDataBase + (n_[t] + (t ? 1000u : 0u)) * kPageBytes};
                n_[t] += 4;
            }
            batch.count = filled;
            batch.cursor = 0;
            return filled;
        }

      private:
        std::uint64_t n_[2] = {0, 0};
    };
    CoreFixture fx(std::make_unique<TwoThreads>());
    fx.run();
    EXPECT_TRUE(fx.sched.allFinished());
    EXPECT_TRUE(fx.threads[0]->finished());
    EXPECT_TRUE(fx.threads[1]->finished());
}

} // namespace
} // namespace skybyte
