/**
 * @file
 * Unit + property tests for the write log: the resizable two-level hash
 * index (§III-B, Figure 12), read-your-writes through double buffering,
 * compaction source enumeration, migration invalidation, and the
 * paper's index memory accounting.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/write_log.h"

namespace skybyte {
namespace {

Addr
addrOf(std::uint64_t page, std::uint32_t off)
{
    return page * kPageBytes + static_cast<Addr>(off) * kCachelineBytes;
}

TEST(LogPageTable, PutGetUpdate)
{
    LogPageTable t(4, 0.75);
    EXPECT_FALSE(t.get(5).has_value());
    t.put(5, 100);
    ASSERT_TRUE(t.get(5).has_value());
    EXPECT_EQ(*t.get(5), 100u);
    t.put(5, 200);
    EXPECT_EQ(*t.get(5), 200u);
    EXPECT_EQ(t.count(), 1u);
}

TEST(LogPageTable, StartsAtFourEntriesAndDoubles)
{
    LogPageTable t(4, 0.75);
    EXPECT_EQ(t.capacity(), 4u);
    t.put(0, 1);
    t.put(1, 2);
    t.put(2, 3);
    EXPECT_EQ(t.capacity(), 4u); // 3/4 = load factor 0.75, not exceeded
    t.put(3, 4);
    EXPECT_GT(t.capacity(), 4u); // doubled
    // All survive the resize.
    for (std::uint32_t off = 0; off < 4; ++off)
        EXPECT_EQ(*t.get(off), off + 1);
}

TEST(LogPageTable, HoldsAllSixtyFourOffsets)
{
    LogPageTable t(4, 0.75);
    for (std::uint32_t off = 0; off < kLinesPerPage; ++off)
        t.put(off, off * 3);
    EXPECT_EQ(t.count(), kLinesPerPage);
    for (std::uint32_t off = 0; off < kLinesPerPage; ++off)
        EXPECT_EQ(*t.get(off), off * 3);
}

TEST(LogPageTable, ForEachVisitsAll)
{
    LogPageTable t(4, 0.75);
    t.put(1, 10);
    t.put(7, 70);
    t.put(63, 630);
    std::map<std::uint32_t, std::uint32_t> seen;
    t.forEach([&](std::uint32_t off, std::uint32_t log_off) {
        seen[off] = log_off;
    });
    EXPECT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[63], 630u);
}

TEST(WriteLogBuffer, AppendLookupSupersede)
{
    WriteLogBuffer buf(1024 * kCachelineBytes, 4, 0.75);
    EXPECT_FALSE(buf.append(addrOf(1, 3), 10));
    EXPECT_TRUE(buf.append(addrOf(1, 3), 20)); // superseded
    ASSERT_TRUE(buf.lookup(addrOf(1, 3)).has_value());
    EXPECT_EQ(*buf.lookup(addrOf(1, 3)), 20u);
    EXPECT_EQ(buf.size(), 2u); // both entries consumed log slots
}

TEST(WriteLogBuffer, FullAtCapacity)
{
    WriteLogBuffer buf(8 * kCachelineBytes, 4, 0.75);
    for (std::uint64_t i = 0; i < 8; ++i)
        buf.append(addrOf(i, 0), i);
    EXPECT_TRUE(buf.full());
}

TEST(WriteLogBuffer, InvalidatePageDropsOnlyThatPage)
{
    WriteLogBuffer buf(1024 * kCachelineBytes, 4, 0.75);
    buf.append(addrOf(1, 0), 1);
    buf.append(addrOf(1, 1), 2);
    buf.append(addrOf(2, 0), 3);
    EXPECT_EQ(buf.invalidatePage(1), 2u);
    EXPECT_FALSE(buf.lookup(addrOf(1, 0)).has_value());
    EXPECT_TRUE(buf.lookup(addrOf(2, 0)).has_value());
}

TEST(WriteLogBuffer, IndexBytesAccounting)
{
    WriteLogBuffer buf(1024 * kCachelineBytes, 4, 0.75);
    EXPECT_EQ(buf.indexBytes(), 0u);
    buf.append(addrOf(42, 0), 1);
    // One first-level entry (16 B) + one 4-entry second-level (16 B).
    EXPECT_EQ(buf.indexBytes(), 32u);
    // Filling the page forces second-level growth to >= 128 slots.
    for (std::uint32_t off = 0; off < kLinesPerPage; ++off)
        buf.append(addrOf(42, off), off);
    EXPECT_GE(buf.indexBytes(), 16u + 128u * 4u);
}

TEST(WriteLog, DoubleBufferingReadYourWrites)
{
    WriteLog log(8 * kCachelineBytes, 4, 0.75);
    for (std::uint64_t i = 0; i < 8; ++i)
        log.append(addrOf(i, 0), i + 100);
    ASSERT_TRUE(log.needCompaction());
    WriteLogBuffer &draining = log.beginCompaction();
    EXPECT_EQ(draining.size(), 8u);
    // New writes land in the fresh buffer; old ones remain visible.
    log.append(addrOf(0, 1), 999);
    EXPECT_EQ(*log.lookup(addrOf(0, 1)), 999u);
    EXPECT_EQ(*log.lookup(addrOf(3, 0)), 103u);
    // drainingValueAt only exposes the draining buffer.
    EXPECT_TRUE(log.drainingValueAt(3, 0).has_value());
    EXPECT_FALSE(log.drainingValueAt(0, 1).has_value());
    log.finishCompaction();
    EXPECT_FALSE(log.lookup(addrOf(3, 0)).has_value());
    EXPECT_EQ(*log.lookup(addrOf(0, 1)), 999u);
}

TEST(WriteLog, ActiveValueShadowsDraining)
{
    WriteLog log(4 * kCachelineBytes, 4, 0.75);
    for (std::uint64_t i = 0; i < 4; ++i)
        log.append(addrOf(7, static_cast<std::uint32_t>(i)), i);
    log.beginCompaction();
    log.append(addrOf(7, 0), 777); // newer than the draining copy
    EXPECT_EQ(*log.lookup(addrOf(7, 0)), 777u);
}

TEST(WriteLog, OverflowCountedNotDropped)
{
    WriteLog log(4 * kCachelineBytes, 4, 0.75);
    for (std::uint64_t i = 0; i < 4; ++i)
        log.append(addrOf(i, 0), i);
    log.beginCompaction();
    // Fill the new active buffer and keep going: appends must not block.
    for (std::uint64_t i = 0; i < 6; ++i)
        log.append(addrOf(100 + i, 0), i);
    EXPECT_GT(log.stats().overflowAppends, 0u);
    EXPECT_TRUE(log.lookup(addrOf(105, 0)).has_value());
}

TEST(WriteLog, StatsTrackUpdatesAndCompactions)
{
    WriteLog log(16 * kCachelineBytes, 4, 0.75);
    log.append(addrOf(1, 1), 1);
    log.append(addrOf(1, 1), 2);
    EXPECT_EQ(log.stats().appends, 2u);
    EXPECT_EQ(log.stats().updateHits, 1u);
    EXPECT_GT(log.stats().indexBytesPeak, 0u);
}

/** Property: the log agrees with a reference map under random traffic. */
class WriteLogProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(WriteLogProperty, MatchesReferenceMap)
{
    Rng rng(GetParam());
    WriteLog log(256 * kCachelineBytes, 4, 0.75);
    std::map<Addr, LineValue> ref;
    for (int i = 0; i < 4000; ++i) {
        const Addr a = addrOf(rng.below(32), static_cast<std::uint32_t>(
                                                 rng.below(64)));
        const LineValue v = rng.next();
        log.append(a, v);
        ref[a] = v;
        if (log.needCompaction()) {
            // Emulate the controller: drain everything synchronously,
            // removing drained values from the reference visibility only
            // after finish (they would land in flash).
            log.beginCompaction();
            log.finishCompaction();
            // After compaction the drained values are gone from the
            // log; rebuild ref from what is still logged.
            std::map<Addr, LineValue> still;
            for (const auto &[addr, val] : ref) {
                if (auto lv = log.lookup(addr))
                    still[addr] = *lv;
            }
            ref = still;
        }
        // Spot-check a random address.
        const Addr probe = addrOf(rng.below(32),
                                  static_cast<std::uint32_t>(
                                      rng.below(64)));
        auto got = log.lookup(probe);
        auto want = ref.find(probe);
        if (want == ref.end()) {
            EXPECT_FALSE(got.has_value());
        } else {
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, want->second);
        }
    }
}

TEST_P(WriteLogProperty, IncrementalIndexBytesMatchesRecomputation)
{
    // The per-append peak tracking reads indexBytes() on every logged
    // write, so it is maintained incrementally; this pins it to the
    // from-scratch walk across random append / invalidate / compaction
    // sequences in both buffers.
    Rng rng(GetParam() ^ 0xacc01a7ULL);
    WriteLog log(128 * kCachelineBytes, 4, 0.75);
    auto check = [&log] {
        ASSERT_EQ(log.activeBuffer().indexBytes(),
                  log.activeBuffer().indexBytesRecomputed());
        ASSERT_EQ(log.standbyBuffer().indexBytes(),
                  log.standbyBuffer().indexBytesRecomputed());
        ASSERT_EQ(log.indexBytes(),
                  log.activeBuffer().indexBytesRecomputed()
                      + log.standbyBuffer().indexBytesRecomputed());
    };
    for (int i = 0; i < 6000; ++i) {
        const std::uint64_t op = rng.below(100);
        if (op < 80) {
            log.append(addrOf(rng.below(24),
                              static_cast<std::uint32_t>(rng.below(64))),
                       rng.next());
        } else if (op < 95) {
            log.invalidatePage(rng.below(24));
        } else if (log.needCompaction()) {
            log.beginCompaction();
            check();
            log.finishCompaction();
        }
        check();
        if (log.needCompaction() && rng.chance(0.5)) {
            log.beginCompaction();
            log.finishCompaction();
            check();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WriteLogProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

TEST(WriteLog, TenantQuotaTripsAndClearsWithCompaction)
{
    WriteLog log(8 * kCachelineBytes, 4, 0.75);
    log.setTenantQuotas({2, 100});
    EXPECT_FALSE(log.overQuota(0));
    log.append(addrOf(0, 0), 1, 0);
    EXPECT_FALSE(log.overQuota(0));
    log.append(addrOf(0, 1), 2, 0);
    EXPECT_TRUE(log.overQuota(0)); // live entries == quota trips it
    EXPECT_FALSE(log.overQuota(1));
    EXPECT_EQ(log.tenantLiveEntries(0), 2u);
    // Unattributed appends (tenant -1) count against no one, and an
    // out-of-range tenant is never over quota.
    log.append(addrOf(1, 0), 3);
    EXPECT_EQ(log.tenantLiveEntries(0), 2u);
    EXPECT_EQ(log.tenantLiveEntries(1), 0u);
    EXPECT_FALSE(log.overQuota(7));
    // Fill the active buffer: the swap moves tenant 0's entries to the
    // draining buffer, where they still count until the drain ends.
    for (std::uint32_t off = 0; !log.needCompaction(); ++off)
        log.append(addrOf(2, off), off, 1);
    log.beginCompaction();
    EXPECT_TRUE(log.overQuota(0));
    log.finishCompaction();
    EXPECT_FALSE(log.overQuota(0)); // drained entries released
    EXPECT_EQ(log.tenantLiveEntries(0), 0u);
}

} // namespace
} // namespace skybyte
