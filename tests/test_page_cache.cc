/**
 * @file
 * Tests for the page-granular SSD DRAM data cache: LRU within sets,
 * touched/dirty bitmap bookkeeping (Figures 5/6 inputs), invalidation
 * for migration, capacity accounting, and the copy-free fill contract
 * (caller writes the payload into the returned slot; a dirty victim's
 * payload surfaces only through the out-param buffer).
 */

#include <gtest/gtest.h>

#include "core/page_cache.h"

namespace skybyte {
namespace {

/** fill() helper matching the old by-value call shape. */
PageEvict
fillWith(PageCache &pc, std::uint64_t lpn, LineValue v,
         PageData *victim = nullptr)
{
    PageEvict ev;
    CachedPage *page = pc.fill(lpn, ev, victim);
    page->data = PageData{};
    page->data[0] = v;
    return ev;
}

TEST(PageCache, FillThenLookup)
{
    PageCache pc(64 * kPageBytes, 4);
    EXPECT_EQ(pc.lookup(9), nullptr);
    fillWith(pc, 9, 42);
    CachedPage *page = pc.lookup(9);
    ASSERT_NE(page, nullptr);
    EXPECT_EQ(page->data[0], 42u);
    EXPECT_EQ(pc.hits(), 1u);
    EXPECT_EQ(pc.misses(), 1u);
}

TEST(PageCache, EvictsLruWithMetadata)
{
    PageCache pc(4 * kPageBytes, 4); // one set
    for (std::uint64_t lpn = 0; lpn < 4; ++lpn)
        fillWith(pc, lpn, lpn);
    // Touch 0..2 so page 3 is LRU; dirty it first.
    CachedPage *p3 = pc.lookup(3);
    p3->dirty = true;
    p3->dirtyMask = 0x5;
    p3->touchedMask = 0xf;
    pc.lookup(0);
    pc.lookup(1);
    pc.lookup(2);
    PageData victim{};
    PageEvict ev = fillWith(pc, 77, 7, &victim);
    EXPECT_TRUE(ev.evicted);
    EXPECT_EQ(ev.lpn, 3u);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.dirtyMask, 0x5u);
    EXPECT_EQ(ev.touchedMask, 0xfu);
    EXPECT_EQ(victim[0], 3u); // dirty victim payload preserved
}

TEST(PageCache, CleanVictimPayloadNotCopied)
{
    PageCache pc(4 * kPageBytes, 4); // one set
    for (std::uint64_t lpn = 0; lpn < 4; ++lpn)
        fillWith(pc, lpn, lpn + 10);
    PageData victim{};
    victim[0] = 0xdead;
    PageEvict ev = fillWith(pc, 99, 1, &victim);
    EXPECT_TRUE(ev.evicted);
    EXPECT_FALSE(ev.dirty);
    // Clean evictions skip the 4 KB copy: the buffer is untouched.
    EXPECT_EQ(victim[0], 0xdeadu);
}

TEST(PageCache, RefillingResidentPageKeepsOneCopy)
{
    PageCache pc(16 * kPageBytes, 4);
    fillWith(pc, 5, 1);
    PageEvict ev = fillWith(pc, 5, 2);
    EXPECT_FALSE(ev.evicted);
    EXPECT_EQ(pc.lookup(5)->data[0], 2u);
    EXPECT_EQ(pc.residentPages(), 1u);
}

TEST(PageCache, InvalidateReturnsContents)
{
    PageCache pc(16 * kPageBytes, 4);
    fillWith(pc, 8, 3);
    pc.lookup(8)->dirtyMask = 1;
    PageEvict out;
    PageData data{};
    EXPECT_TRUE(pc.invalidate(8, &out, &data));
    EXPECT_EQ(out.lpn, 8u);
    EXPECT_EQ(data[0], 3u);
    EXPECT_EQ(pc.lookup(8), nullptr);
    EXPECT_FALSE(pc.invalidate(8));
    EXPECT_EQ(pc.residentPages(), 0u);
}

TEST(PageCache, CapacityRespected)
{
    PageCache pc(32 * kPageBytes, 8);
    for (std::uint64_t lpn = 0; lpn < 100; ++lpn)
        fillWith(pc, lpn, lpn);
    EXPECT_LE(pc.residentPages(), pc.capacityPages());
    EXPECT_EQ(pc.capacityPages(), 32u);
}

TEST(PageCache, ForEachVisitsResidentOnly)
{
    PageCache pc(16 * kPageBytes, 4);
    fillWith(pc, 1, 1);
    fillWith(pc, 2, 2);
    pc.invalidate(1);
    int count = 0;
    pc.forEach([&](CachedPage &page) {
        count++;
        EXPECT_EQ(page.lpn, 2u);
    });
    EXPECT_EQ(count, 1);
}

TEST(PageCache, MinimumGeometry)
{
    PageCache pc(0, 16); // degenerate: clamps to at least one set
    EXPECT_GE(pc.capacityPages(), 16u);
    fillWith(pc, 1, 9);
    EXPECT_NE(pc.lookup(1), nullptr);
}

} // namespace
} // namespace skybyte
