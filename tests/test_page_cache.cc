/**
 * @file
 * Tests for the page-granular SSD DRAM data cache: LRU within sets,
 * touched/dirty bitmap bookkeeping (Figures 5/6 inputs), invalidation
 * for migration, and capacity accounting.
 */

#include <gtest/gtest.h>

#include "core/page_cache.h"

namespace skybyte {
namespace {

PageData
pageWith(LineValue v)
{
    PageData d{};
    d[0] = v;
    return d;
}

TEST(PageCache, FillThenLookup)
{
    PageCache pc(64 * kPageBytes, 4);
    EXPECT_EQ(pc.lookup(9), nullptr);
    pc.fill(9, pageWith(42));
    CachedPage *page = pc.lookup(9);
    ASSERT_NE(page, nullptr);
    EXPECT_EQ(page->data[0], 42u);
    EXPECT_EQ(pc.hits(), 1u);
    EXPECT_EQ(pc.misses(), 1u);
}

TEST(PageCache, EvictsLruWithMetadata)
{
    PageCache pc(4 * kPageBytes, 4); // one set
    for (std::uint64_t lpn = 0; lpn < 4; ++lpn)
        pc.fill(lpn, pageWith(lpn));
    // Touch 0..2 so page 3 is LRU; dirty it first.
    CachedPage *p3 = pc.lookup(3);
    p3->dirty = true;
    p3->dirtyMask = 0x5;
    p3->touchedMask = 0xf;
    pc.lookup(0);
    pc.lookup(1);
    pc.lookup(2);
    PageEvict ev = pc.fill(77, pageWith(7));
    EXPECT_TRUE(ev.evicted);
    EXPECT_EQ(ev.lpn, 3u);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.dirtyMask, 0x5u);
    EXPECT_EQ(ev.touchedMask, 0xfu);
    EXPECT_EQ(ev.data[0], 3u);
}

TEST(PageCache, RefillingResidentPageKeepsOneCopy)
{
    PageCache pc(16 * kPageBytes, 4);
    pc.fill(5, pageWith(1));
    PageEvict ev = pc.fill(5, pageWith(2));
    EXPECT_FALSE(ev.evicted);
    EXPECT_EQ(pc.lookup(5)->data[0], 2u);
    EXPECT_EQ(pc.residentPages(), 1u);
}

TEST(PageCache, InvalidateReturnsContents)
{
    PageCache pc(16 * kPageBytes, 4);
    pc.fill(8, pageWith(3));
    pc.lookup(8)->dirtyMask = 1;
    PageEvict out;
    EXPECT_TRUE(pc.invalidate(8, &out));
    EXPECT_EQ(out.lpn, 8u);
    EXPECT_EQ(out.data[0], 3u);
    EXPECT_EQ(pc.lookup(8), nullptr);
    EXPECT_FALSE(pc.invalidate(8));
    EXPECT_EQ(pc.residentPages(), 0u);
}

TEST(PageCache, CapacityRespected)
{
    PageCache pc(32 * kPageBytes, 8);
    for (std::uint64_t lpn = 0; lpn < 100; ++lpn)
        pc.fill(lpn, pageWith(lpn));
    EXPECT_LE(pc.residentPages(), pc.capacityPages());
    EXPECT_EQ(pc.capacityPages(), 32u);
}

TEST(PageCache, ForEachVisitsResidentOnly)
{
    PageCache pc(16 * kPageBytes, 4);
    pc.fill(1, pageWith(1));
    pc.fill(2, pageWith(2));
    pc.invalidate(1);
    int count = 0;
    pc.forEach([&](CachedPage &page) {
        count++;
        EXPECT_EQ(page.lpn, 2u);
    });
    EXPECT_EQ(count, 1);
}

TEST(PageCache, MinimumGeometry)
{
    PageCache pc(0, 16); // degenerate: clamps to at least one set
    EXPECT_GE(pc.capacityPages(), 16u);
    pc.fill(1, pageWith(9));
    EXPECT_NE(pc.lookup(1), nullptr);
}

} // namespace
} // namespace skybyte
