/**
 * @file
 * Deterministic garbage-input fuzzing of the inputs that cross a
 * process boundary — workload specs, config files, sweep reports, and
 * binary STRC trace captures. Every such parser/decoder must fail
 * with an exception, never with a crash, an abort, an over-read, or
 * an unbounded allocation/loop.
 *
 * The fuzzing is seeded byte mutation (replace / insert / delete /
 * truncate) of known-valid inputs, driven by the repo's own xoshiro
 * Rng, so every run exercises the exact same mutants — a failure here
 * reproduces everywhere.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/fs.h"
#include "common/rng.h"
#include "sim/config_file.h"
#include "sim/report.h"
#include "trace/trace_log/trace_log.h"
#include "trace/workload.h"
#include "trace/workload_spec.h"

namespace skybyte {
namespace {

/** Apply 1-4 random byte mutations to @p text. */
std::string
mutate(const std::string &text, Rng &rng)
{
    std::string out = text;
    const std::uint64_t edits = 1 + rng.below(4);
    for (std::uint64_t e = 0; e < edits && !out.empty(); ++e) {
        const std::size_t at = rng.below(out.size());
        switch (rng.below(4)) {
        case 0: // replace with an arbitrary byte (NUL and UTF-8 too)
            out[at] = static_cast<char>(rng.below(256));
            break;
        case 1: // insert
            out.insert(out.begin() + at,
                       static_cast<char>(rng.below(256)));
            break;
        case 2: // delete
            out.erase(out.begin() + at);
            break;
        case 3: // truncate
            out.resize(at);
            break;
        }
    }
    return out;
}

/**
 * The fuzz property: @p parse either succeeds or throws a
 * std::exception. Anything escaping that contract (a foreign throw
 * type; crashes abort the whole test binary anyway) is a bug.
 */
template <typename Fn>
void
fuzzInput(const std::string &valid, std::uint64_t seed, int rounds,
          Fn &&parse)
{
    // The unmutated input must parse: a fuzz corpus that is itself
    // invalid exercises nothing but the error path.
    parse(valid);

    Rng rng(seed);
    for (int round = 0; round < rounds; ++round) {
        const std::string garbage = mutate(valid, rng);
        try {
            parse(garbage);
        } catch (const std::exception &) {
            // Rejecting garbage with a typed exception is the contract.
        } catch (...) {
            ADD_FAILURE() << "non-std exception for input: " << garbage;
        }
        // Systematic prefix truncations on top of the random ones:
        // every torn-write length must be survivable.
        if (round < static_cast<int>(valid.size())) {
            try {
                parse(valid.substr(0, valid.size() - 1
                                          - static_cast<std::size_t>(
                                              round)));
            } catch (const std::exception &) {
            } catch (...) {
                ADD_FAILURE() << "non-std exception for truncation "
                              << round;
            }
        }
    }
}

TEST(FuzzFrontends, WorkloadSpecsThrowNotCrash)
{
    const std::vector<std::string> corpus = {
        "ycsb",
        "zipf:theta=0.99,footprint=8G,compute=2",
        "scan:stride=128,write_ratio=0.5",
        "mix:app=ycsb;noisy=scan:stride=4096;hot=zipf:theta=1.2",
        "mix:lat=ptrchase:footprint=8M,chain=16,qos=4;"
        "noisy=uniform:footprint=24M,write_ratio=0.2,qos=1",
    };
    std::uint64_t seed = 0xf00dULL;
    for (const std::string &valid : corpus) {
        fuzzInput(valid, seed++, 400, [](const std::string &text) {
            const WorkloadSpec spec = parseWorkloadSpec(text);
            if (spec.isMix())
                parseMixTenants(spec);
        });
    }
}

TEST(FuzzFrontends, ConfigStreamsThrowNotCrash)
{
    const std::string valid = "# skybyte config\n"
                              "promotion_enable=true\n"
                              "cs_threshold=2000\n"
                              "ssd_cache_size_byte=16777216\n"
                              "host_dram_size_byte=1073741824\n"
                              "num_cores=8\n"
                              "num_threads=16\n"
                              "workload=zipf:theta=0.99\n"
                              "instr_per_thread=100000\n"
                              "lanes=4\n"
                              "qos_policy=weighted\n"
                              "qos_epoch_us=5\n"
                              "qos_credits_per_epoch=64\n"
                              "qos_write_log_quota=true\n"
                              "qos_migration_share=false\n"
                              "seed=7\n";
    fuzzInput(valid, 0xcafeULL, 600, [](const std::string &text) {
        std::istringstream in(text);
        ExperimentSpec spec;
        applyConfigStream(in, spec);
    });
}

TEST(FuzzFrontends, LanesKnobGarbageThrowsNotCrash)
{
    // The parallel-kernel knob's front-end contract: out-of-range or
    // malformed lane counts are an invalid_argument, never a crash or
    // a silently clamped value.
    for (const std::string bad :
         {"lanes=0", "lanes=65", "lanes=abc", "lanes=",
          "lanes=18446744073709551616", "lanes=-4", "lanes=4.0"}) {
        SCOPED_TRACE(bad);
        std::istringstream in(bad + "\n");
        ExperimentSpec spec;
        EXPECT_THROW(applyConfigStream(in, spec), std::invalid_argument);
    }
    std::istringstream ok("lanes=8\n");
    ExperimentSpec spec;
    applyConfigStream(ok, spec);
    EXPECT_EQ(spec.config.kernel.lanes, 8u);
}

TEST(FuzzFrontends, QosKnobGarbageThrowsNotCrash)
{
    // Garbage qos= weights on mix tenants are an invalid_argument at
    // workload-construction time, never a crash or a silent default.
    WorkloadParams params;
    params.numThreads = 2;
    for (const std::string bad :
         {"0", "-1", "nan", "inf", "-inf", "junk", "", "1.5x"}) {
        SCOPED_TRACE(bad);
        const std::string spec = "mix:lat=ptrchase:footprint=4M,qos="
                                 + bad + ";noisy=uniform:footprint=4M";
        EXPECT_THROW(makeWorkload(spec, params), std::invalid_argument);
    }
    // qos= is a mix-level key: on a plain workload it is an unknown
    // argument, not a silently ignored one.
    EXPECT_THROW(makeWorkload("uniform:qos=2", params),
                 std::invalid_argument);
    // A valid weighted mix still builds.
    EXPECT_NE(makeWorkload("mix:a=uniform:footprint=4M,qos=2;"
                           "b=uniform:footprint=4M,qos=1",
                           params),
              nullptr);
    // Garbage qos_* config knobs throw, never crash or clamp.
    for (const std::string bad :
         {"qos_policy=strict", "qos_epoch_us=0", "qos_epoch_us=1000001",
          "qos_epoch_us=abc", "qos_credits_per_epoch=0",
          "qos_credits_per_epoch=4294967296",
          "qos_write_log_quota=maybe", "qos_migration_share=2"}) {
        SCOPED_TRACE(bad);
        std::istringstream in(bad + "\n");
        ExperimentSpec spec;
        EXPECT_THROW(applyConfigStream(in, spec),
                     std::invalid_argument);
    }
    std::istringstream ok("qos_policy=weighted\n"
                          "qos_epoch_us=5\n"
                          "qos_credits_per_epoch=64\n"
                          "qos_write_log_quota=true\n"
                          "qos_migration_share=false\n");
    ExperimentSpec qspec;
    applyConfigStream(ok, qspec);
    EXPECT_TRUE(qspec.config.qos.weightedAdmission);
    EXPECT_EQ(qspec.config.qos.epochTicks, usToTicks(5.0));
    EXPECT_EQ(qspec.config.qos.creditsPerEpoch, 64u);
    EXPECT_TRUE(qspec.config.qos.writeLogQuota);
    EXPECT_FALSE(qspec.config.qos.migrationShare);
}

TEST(FuzzFrontends, SweepReportsThrowNotCrash)
{
    // A hand-built but structurally faithful report: two entries made
    // of real toJson(SimResult) bytes plus a failure-manifest record,
    // covering every branch of the parser.
    SimResult res;
    res.variant = "Base-CSSD";
    res.workload = "ycsb";
    SweepReport report;
    report.sweep = "smoke";
    report.totalPoints = 3;
    report.entries.push_back({0, sweepEntryJson(0, "ycsb/Base-CSSD",
                                                res)});
    res.variant = "SkyByte-Full";
    report.entries.push_back({1, sweepEntryJson(1, "ycsb/SkyByte-Full",
                                                res)});
    report.failures.push_back(
        {2, "srad/Base-CSSD", "failed", 3, "signal 9 (Killed)"});
    const std::string valid = toJson(report);

    fuzzInput(valid, 0xbeefULL, 600, [](const std::string &text) {
        parseSweepReport(text);
    });
}

TEST(FuzzFrontends, TraceLogDecoderThrowsNotCrash)
{
    // A small but real STRC capture: several threads, block-boundary
    // tails, and address patterns that make some blocks compress and
    // some store raw — so mutants land in every region of the format
    // (header, compressed/raw payloads, CRCs, varint index, trailer).
    const std::string path =
        ::testing::TempDir() + "/fuzz_corpus.strc";
    {
        TraceLogWriter writer(path, "fuzz", 1u << 20, 3,
                              /*block_records=*/32);
        Rng rng(0x5eedULL);
        for (int tid = 0; tid < 3; ++tid) {
            const int count = 70 + tid * 13; // tails of varied size
            for (int i = 0; i < count; ++i) {
                TraceRecord rec{};
                // Thread 0 strides (compressible deltas); the others
                // jump randomly (raw blocks survive).
                rec.vaddr = tid == 0
                                ? static_cast<std::uint64_t>(i) * 64
                                : rng.below(1u << 20) * 64;
                rec.isWrite = (i % 3) == 0;
                rec.computeOps = static_cast<std::uint32_t>(i % 7);
                writer.append(tid, rec);
            }
        }
        writer.finish();
    }
    const std::string valid = readFileText(path);

    // The decode must visit every byte that can be visited: parse,
    // then drain all three streams through the seek/next cursor.
    fuzzInput(valid, 0x57acULL, 600, [](const std::string &text) {
        TraceLogReader reader(
            std::vector<std::uint8_t>(text.begin(), text.end()));
        TraceRecord rec{};
        for (int tid = 0; tid < reader.numThreads(); ++tid) {
            reader.seek(tid, 0);
            while (reader.next(tid, rec)) {
            }
        }
    });
}

} // namespace
} // namespace skybyte
