/**
 * @file
 * Cross-variant property tests, parameterized over workloads: the
 * paper's headline orderings and accounting invariants must hold for
 * every workload at test scale.
 */

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/system.h"

namespace skybyte {
namespace {

ExperimentOptions
propOpts()
{
    ExperimentOptions opt;
    opt.instrPerThread = 25'000;
    opt.footprintBytes = 24ULL * 1024 * 1024;
    return opt;
}

SimConfig
propConfig(const std::string &variant)
{
    SimConfig cfg = makeConfig(variant);
    cfg.cpu.l1d.sizeBytes = 16 * 1024;
    cfg.cpu.l2.sizeBytes = 64 * 1024;
    cfg.cpu.llc.sizeBytes = 1024 * 1024;
    cfg.ssdCache.writeLogBytes = 256 * 1024;
    cfg.ssdCache.dataCacheBytes = 1792 * 1024;
    cfg.hostMem.promotedBytesMax = 8ULL * 1024 * 1024;
    return cfg;
}

class PerWorkload : public ::testing::TestWithParam<std::string>
{
  protected:
    SimResult
    run(const std::string &variant)
    {
        SimConfig cfg = propConfig(variant);
        System sys(cfg, GetParam(), makeParams(cfg, propOpts()));
        SimResult res = sys.run(usToTicks(3'000'000.0));
        EXPECT_FALSE(res.timedOut) << variant << "/" << GetParam();
        return res;
    }
};

TEST_P(PerWorkload, DramOnlyIsFastest)
{
    const SimResult ideal = run("DRAM-Only");
    const SimResult base = run("Base-CSSD");
    const SimResult full = run("SkyByte-Full");
    EXPECT_LT(ideal.execTime, base.execTime);
    EXPECT_LE(ideal.execTime, full.execTime);
}

TEST_P(PerWorkload, FullIsNotSlowerThanBase)
{
    const SimResult base = run("Base-CSSD");
    const SimResult full = run("SkyByte-Full");
    // Allow a small tolerance for scheduling noise on compute-heavy
    // workloads; the paper's claim is a strict win at full scale.
    EXPECT_LT(static_cast<double>(full.execTime),
              static_cast<double>(base.execTime) * 1.10);
}

TEST_P(PerWorkload, WriteLogNeverIncreasesFlashWriteTraffic)
{
    const SimResult base = run("Base-CSSD");
    const SimResult w = run("SkyByte-W");
    EXPECT_LE(w.flashHostPrograms, base.flashHostPrograms + 8);
}

TEST_P(PerWorkload, RequestAccountingConsistent)
{
    const SimResult res = run("SkyByte-Full");
    // Every demand read is either a host read, an SSD hit, an SSD miss,
    // or a hinted retry; total instruction count committed must match
    // the configured budget.
    EXPECT_GT(res.committedInstructions, 0u);
    EXPECT_GE(res.ssdReadHits + res.ssdReadMisses + res.hostReads, 1u);
    // AMAT components are non-negative and sum to the total.
    EXPECT_GE(res.amatHostTicks, 0.0);
    EXPECT_GE(res.amatFlashTicks, 0.0);
    EXPECT_NEAR(res.amatTotalTicks,
                res.amatHostTicks + res.amatProtocolTicks
                    + res.amatIndexingTicks + res.amatSsdDramTicks
                    + res.amatFlashTicks,
                1e-6);
}

TEST_P(PerWorkload, BoundednessBucketsPositive)
{
    const SimResult res = run("Base-CSSD");
    EXPECT_GT(res.memStallTicks, 0u);
    EXPECT_GT(res.computeTicks, 0u);
    // At CXL-SSD latencies every workload is strongly memory bound
    // (Fig 4: 77-99.8%).
    const double mem_share =
        static_cast<double>(res.memStallTicks)
        / static_cast<double>(res.memStallTicks + res.computeTicks);
    EXPECT_GT(mem_share, 0.5);
}

TEST_P(PerWorkload, ContextSwitchingOnlyWhenEnabled)
{
    const SimResult base = run("Base-CSSD");
    const SimResult c = run("SkyByte-C");
    EXPECT_EQ(base.contextSwitches, 0u);
    EXPECT_GT(c.contextSwitches, 0u);
}

TEST_P(PerWorkload, DeterministicAcrossRuns)
{
    const SimResult a = run("SkyByte-WP");
    const SimResult b = run("SkyByte-WP");
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.flashHostPrograms, b.flashHostPrograms);
    EXPECT_EQ(a.ssdWrites, b.ssdWrites);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PerWorkload,
    ::testing::Values("bc", "bfs-dense", "dlrm", "radix", "srad", "tpcc",
                      "ycsb"));

} // namespace
} // namespace skybyte
