/**
 * @file
 * Tests for the bench-report comparator (sim/benchdiff.h): key-path
 * tracking in the lexer, structural-mismatch rejection, relative
 * tolerance, the --keys path filter, and the regress-only mode — the
 * contract the CI bench-baselines gate (tools/skybyte_benchdiff)
 * relies on.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/benchdiff.h"

namespace skybyte {
namespace {

/** A miniature bench report in the shape the benches emit. */
std::string
report(double near_cal, double near_leg, double geomean)
{
    std::string out = "{\n  \"bench\": \"kernel_hotpath\",\n";
    out += "  \"scenarios\": {\n";
    out += "    \"near\": {\"calendar\": " + std::to_string(near_cal)
           + ", \"legacy\": " + std::to_string(near_leg) + "}\n";
    out += "  },\n  \"speedup_geomean\": " + std::to_string(geomean)
           + "\n}\n";
    return out;
}

TEST(BenchDiff, IdenticalReportsHaveNoDrift)
{
    const std::string a = report(3.2e7, 1.0e7, 3.2);
    EXPECT_TRUE(diffBenchJson(a, a, {}).empty());
}

TEST(BenchDiff, DriftCarriesDottedKeyPath)
{
    BenchDiffOptions opt;
    opt.tolPct = 1.0;
    const auto drifts = diffBenchJson(report(3.2e7, 1.0e7, 3.2),
                                      report(1.6e7, 1.0e7, 3.2), opt);
    ASSERT_EQ(drifts.size(), 1u);
    EXPECT_EQ(drifts[0].path, "scenarios.near.calendar");
    EXPECT_DOUBLE_EQ(drifts[0].baseline, 3.2e7);
    EXPECT_DOUBLE_EQ(drifts[0].current, 1.6e7);
    EXPECT_TRUE(drifts[0].regression);
    EXPECT_NEAR(drifts[0].relPct, 50.0, 1e-9);
}

TEST(BenchDiff, WithinToleranceIsNotADrift)
{
    BenchDiffOptions opt;
    opt.tolPct = 10.0;
    EXPECT_TRUE(diffBenchJson(report(100, 50, 2.0),
                              report(95, 52, 2.05), opt)
                    .empty());
}

TEST(BenchDiff, RenamedMetricIsStructural)
{
    const std::string a = report(100, 50, 2.0);
    std::string b = a;
    b.replace(b.find("legacy"), 6, "seeded");
    EXPECT_THROW(diffBenchJson(a, b, {}), std::runtime_error);
}

TEST(BenchDiff, AddedMetricIsStructural)
{
    const std::string a = report(100, 50, 2.0);
    std::string b = a;
    const std::string needle = "\"speedup_geomean\"";
    b.insert(b.find(needle), "\"extra\": 1,\n  ");
    EXPECT_THROW(diffBenchJson(a, b, {}), std::runtime_error);
}

TEST(BenchDiff, KeysFilterGatesOnlySelectedPaths)
{
    BenchDiffOptions opt;
    opt.tolPct = 1.0;
    opt.keys = {"speedup"};
    // Both throughputs halve, but only the geomean is gated.
    const auto drifts = diffBenchJson(report(100, 50, 4.0),
                                      report(50, 25, 2.0), opt);
    ASSERT_EQ(drifts.size(), 1u);
    EXPECT_EQ(drifts[0].path, "speedup_geomean");
}

TEST(BenchDiff, RegressOnlySkipsImprovements)
{
    BenchDiffOptions opt;
    opt.tolPct = 1.0;
    opt.regressOnly = true;
    // calendar doubles (improvement), legacy halves (regression).
    const auto drifts = diffBenchJson(report(100, 50, 2.0),
                                      report(200, 25, 2.0), opt);
    ASSERT_EQ(drifts.size(), 1u);
    EXPECT_EQ(drifts[0].path, "scenarios.near.legacy");
    EXPECT_TRUE(drifts[0].regression);
}

TEST(BenchDiff, ArrayElementsInheritTheArrayKey)
{
    const std::string a = "{\"curve\": [1, 2, 3]}";
    const std::string b = "{\"curve\": [1, 2, 6]}";
    BenchDiffOptions opt;
    opt.tolPct = 1.0;
    const auto drifts = diffBenchJson(a, b, opt);
    ASSERT_EQ(drifts.size(), 1u);
    EXPECT_EQ(drifts[0].path, "curve");
    EXPECT_DOUBLE_EQ(drifts[0].current, 6.0);
}

TEST(BenchDiff, StringValueChangeIsStructural)
{
    EXPECT_THROW(diffBenchJson("{\"unit\": \"events_per_sec\"}",
                               "{\"unit\": \"requests_per_sec\"}", {}),
                 std::runtime_error);
}

TEST(BenchDiff, FormatMentionsPathAndDirection)
{
    BenchDiffOptions opt;
    opt.tolPct = 1.0;
    const auto drifts = diffBenchJson(report(100, 50, 4.0),
                                      report(100, 50, 2.0), opt);
    ASSERT_EQ(drifts.size(), 1u);
    const std::string line = formatBenchDrift(drifts[0], opt);
    EXPECT_NE(line.find("speedup_geomean"), std::string::npos);
    EXPECT_NE(line.find("regression"), std::string::npos);
}

} // namespace
} // namespace skybyte
