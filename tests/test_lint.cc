/**
 * @file
 * Tests for the skybyte_lint determinism auditor (src/lint):
 *
 *  - scanner: comment and string/char-literal blanking, multi-line
 *    block comments and raw strings, digit separators, and
 *    whole-identifier matching (vruntime must not trip the time ban)
 *  - each builtin rule family: a positive fixture, a negative fixture,
 *    a pragma-suppressed fixture, and a pragma rejected for missing
 *    justification
 *  - pragma hygiene: unknown rule names, allow(pragma), malformed
 *    pragmas, comment-only-line-above placement, and rule selectivity
 *  - baseline semantics: parse/format round-trip, multiset add/shrink
 *    diffs (new findings are fresh, fixed ones leave stale entries)
 *  - collectLintFiles: extension and directory filtering plus sorted,
 *    enumeration-order-independent output
 *
 * Fixture snippets are plain strings fed through scanSource() with
 * synthetic repo-relative paths, so the scope predicates see the same
 * shapes the tree lint does without touching the real tree.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace skybyte {
namespace {

/** Scan + lint one fixture file. */
std::vector<LintFinding>
lintSnippet(const std::string &path, const std::string &text)
{
    return lintFile(scanSource(path, text));
}

/** Findings of @p rule only. */
std::vector<LintFinding>
byRule(const std::vector<LintFinding> &findings, const std::string &rule)
{
    std::vector<LintFinding> out;
    for (const auto &f : findings)
        if (f.rule == rule)
            out.push_back(f);
    return out;
}

// --------------------------------------------------------------- scanner

TEST(LintScanner, LineCommentsAreBlanked)
{
    const SourceFile file =
        scanSource("src/core/x.cc", "int a; // std::rand() here\n");
    ASSERT_EQ(file.lines.size(), 1u);
    EXPECT_FALSE(containsIdentifier(file.lines[0].code, "rand"));
    EXPECT_TRUE(file.lines[0].code.find("int a;") != std::string::npos);
    EXPECT_TRUE(lintSnippet("src/core/x.cc",
                            "int a; // call std::rand() maybe\n")
                    .empty());
}

TEST(LintScanner, BlockCommentsSpanLines)
{
    const SourceFile file = scanSource(
        "src/core/x.cc", "int a; /* std::rand()\n time( \n */ int b;\n");
    ASSERT_EQ(file.lines.size(), 3u);
    EXPECT_FALSE(containsIdentifier(file.lines[0].code, "rand"));
    EXPECT_FALSE(containsIdentifier(file.lines[1].code, "time"));
    EXPECT_TRUE(file.lines[2].code.find("int b;") != std::string::npos);
}

TEST(LintScanner, StringAndCharLiteralBodiesAreBlanked)
{
    const SourceFile file = scanSource(
        "src/core/x.cc",
        "auto s = \"time(\"; auto c = 'r'; auto e = \"\\\"rand\\\"\";\n");
    ASSERT_EQ(file.lines.size(), 1u);
    EXPECT_FALSE(containsIdentifier(file.lines[0].code, "time"));
    EXPECT_FALSE(containsIdentifier(file.lines[0].code, "rand"));
}

TEST(LintScanner, RawStringsSpanLines)
{
    const SourceFile file = scanSource(
        "src/core/x.cc",
        "auto s = R\"(time(\nrand()\n)\"; int after;\n");
    ASSERT_EQ(file.lines.size(), 3u);
    EXPECT_FALSE(containsIdentifier(file.lines[0].code, "time"));
    EXPECT_FALSE(containsIdentifier(file.lines[1].code, "rand"));
    EXPECT_TRUE(file.lines[2].code.find("int after;")
                != std::string::npos);
}

TEST(LintScanner, DigitSeparatorIsNotACharLiteral)
{
    // If 100'000 opened a char literal, everything after it would be
    // blanked and the time() call would escape the scan.
    const SourceFile file = scanSource(
        "src/core/x.cc", "constexpr int n = 100'000; time(nullptr);\n");
    ASSERT_EQ(file.lines.size(), 1u);
    EXPECT_TRUE(containsIdentifier(file.lines[0].code, "time"));
}

TEST(LintScanner, WholeIdentifierMatchingOnly)
{
    EXPECT_TRUE(containsIdentifier("time(nullptr)", "time"));
    EXPECT_FALSE(containsIdentifier("vruntime(tid)", "time"));
    EXPECT_FALSE(containsIdentifier("timeout = 3", "time"));
    EXPECT_FALSE(containsIdentifier("time_stamp", "time"));
    EXPECT_TRUE(containsIdentifier("std::time(&t)", "time"));
}

TEST(LintScanner, IdentifierLinesReportsEveryLine)
{
    const SourceFile file = scanSource(
        "src/core/x.cc", "rand();\nint x;\nrand(); rand();\n");
    const auto lines = identifierLines(file, "rand");
    // One finding per line, not per occurrence.
    EXPECT_EQ(lines, (std::vector<std::size_t>{1, 3}));
}

// ---------------------------------------------------- rule: nondeterminism

TEST(LintRules, NondeterminismPositive)
{
    const auto findings = byRule(
        lintSnippet("src/core/x.cc", "int r = std::rand();\n"),
        "nondeterminism");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].line, 1u);
    EXPECT_EQ(findings[0].code, "int r = std::rand();");
}

TEST(LintRules, NondeterminismNegativeOutsideScope)
{
    // tools/ may read the wall clock; the rule guards the simulated
    // world under src/.
    EXPECT_TRUE(byRule(lintSnippet("tools/x.cc",
                                   "auto t = time(nullptr);\n"),
                       "nondeterminism")
                    .empty());
}

TEST(LintRules, NondeterminismAllowlistedGetenv)
{
    EXPECT_TRUE(byRule(lintSnippet("src/sim/experiment.cc",
                                   "const char *v = getenv(\"X\");\n"),
                       "nondeterminism")
                    .empty());
    EXPECT_EQ(byRule(lintSnippet("src/core/x.cc",
                                 "const char *v = getenv(\"X\");\n"),
                     "nondeterminism")
                  .size(),
              1u);
}

TEST(LintRules, NondeterminismPragmaSuppressed)
{
    const auto findings = lintSnippet(
        "src/core/x.cc",
        "int r = std::rand(); // skybyte-lint: allow(nondeterminism) "
        "fixture justification\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintRules, PragmaWithoutJustificationRejected)
{
    const auto findings = lintSnippet(
        "src/core/x.cc",
        "int r = std::rand(); // skybyte-lint: allow(nondeterminism)\n");
    // The suppression is void AND the pragma itself is reported.
    ASSERT_EQ(byRule(findings, "nondeterminism").size(), 1u);
    ASSERT_EQ(byRule(findings, "pragma").size(), 1u);
}

// ----------------------------------------------- rule: unordered-container

TEST(LintRules, UnorderedContainerPositive)
{
    const auto findings = byRule(
        lintSnippet("src/cpu/x.cc",
                    "std::unordered_map<int, int> m;\n"),
        "unordered-container");
    ASSERT_EQ(findings.size(), 1u);
}

TEST(LintRules, UnorderedContainerNegativeOutsideScope)
{
    EXPECT_TRUE(byRule(lintSnippet("src/common/x.cc",
                                   "std::unordered_map<int, int> m;\n"),
                       "unordered-container")
                    .empty());
}

TEST(LintRules, UnorderedContainerPragmaOnLineAbove)
{
    const auto findings = lintSnippet(
        "src/cpu/x.cc",
        "// skybyte-lint: allow(unordered-container) fixture reason\n"
        "std::unordered_set<int> s;\n");
    EXPECT_TRUE(findings.empty());
}

TEST(LintRules, UnorderedContainerPragmaMissingJustification)
{
    const auto findings = lintSnippet(
        "src/cpu/x.cc",
        "// skybyte-lint: allow(unordered-container)   \n"
        "std::unordered_set<int> s;\n");
    EXPECT_EQ(byRule(findings, "unordered-container").size(), 1u);
    EXPECT_EQ(byRule(findings, "pragma").size(), 1u);
}

// ----------------------------------------------------- rule: raw-file-write

TEST(LintRules, RawFileWritePositive)
{
    const auto findings = byRule(
        lintSnippet("src/sim/x.cc", "std::ofstream out(path);\n"),
        "raw-file-write");
    ASSERT_EQ(findings.size(), 1u);
}

TEST(LintRules, RawFileWriteNegativeInFsCc)
{
    EXPECT_TRUE(byRule(lintSnippet("src/common/fs.cc",
                                   "std::ofstream out(path);\n"),
                       "raw-file-write")
                    .empty());
}

TEST(LintRules, RawFileWritePragmaSuppressed)
{
    EXPECT_TRUE(lintSnippet("src/sim/x.cc",
                            "// skybyte-lint: allow(raw-file-write) "
                            "fixture reason\n"
                            "FILE *f = fopen(path, \"w\");\n")
                    .empty());
}

TEST(LintRules, RawFileWritePragmaMissingJustification)
{
    const auto findings = lintSnippet(
        "src/sim/x.cc",
        "FILE *f = fopen(path, \"w\"); // skybyte-lint: "
        "allow(raw-file-write)\n");
    EXPECT_EQ(byRule(findings, "raw-file-write").size(), 1u);
    EXPECT_EQ(byRule(findings, "pragma").size(), 1u);
}

// ----------------------------------------------------- rule: hot-path-alloc

TEST(LintRules, HotPathAllocPositive)
{
    const auto findings = byRule(
        lintSnippet("src/core/ssd_controller.cc",
                    "auto *p = new Page();\n"),
        "hot-path-alloc");
    ASSERT_EQ(findings.size(), 1u);
}

TEST(LintRules, HotPathAllocNegativeOutsideRequestPath)
{
    EXPECT_TRUE(byRule(lintSnippet("src/core/migration.cc",
                                   "auto *p = new Page();\n"),
                       "hot-path-alloc")
                    .empty());
}

TEST(LintRules, HotPathAllocPragmaSuppressed)
{
    EXPECT_TRUE(lintSnippet("src/core/ssd_controller.cc",
                            "// skybyte-lint: allow(hot-path-alloc) "
                            "construction-time fixture\n"
                            "log_ = std::make_unique<WriteLog>(n);\n")
                    .empty());
}

TEST(LintRules, HotPathAllocPragmaMissingJustification)
{
    const auto findings = lintSnippet(
        "src/core/ssd_controller.cc",
        "// skybyte-lint: allow(hot-path-alloc)\n"
        "auto s = std::make_shared<int>(1);\n");
    EXPECT_EQ(byRule(findings, "hot-path-alloc").size(), 1u);
    EXPECT_EQ(byRule(findings, "pragma").size(), 1u);
}

// ---------------------------------------------------------- pragma hygiene

TEST(LintPragma, UnknownRuleNameIsAFinding)
{
    const auto findings = lintSnippet(
        "src/core/x.cc",
        "int a; // skybyte-lint: allow(no-such-rule) because fixture\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "pragma");
}

TEST(LintPragma, AllowPragmaItselfIsForbidden)
{
    const auto findings = lintSnippet(
        "src/core/x.cc",
        "int a; // skybyte-lint: allow(pragma) nice try\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "pragma");
}

TEST(LintPragma, MalformedPragmaIsAFinding)
{
    const auto findings = lintSnippet(
        "src/core/x.cc", "int a; // skybyte-lint: suppress everything\n");
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "pragma");
}

TEST(LintPragma, SuppressesOnlyNamedRules)
{
    // The pragma waives the unordered-container finding but not the
    // nondeterminism one on the same line.
    const auto findings = lintSnippet(
        "src/cpu/x.cc",
        "std::unordered_map<int, int> m; int r = std::rand(); "
        "// skybyte-lint: allow(unordered-container) fixture reason\n");
    EXPECT_TRUE(byRule(findings, "unordered-container").empty());
    EXPECT_EQ(byRule(findings, "nondeterminism").size(), 1u);
}

TEST(LintPragma, CommentLineAboveOnlyCoversNextLine)
{
    const auto findings = lintSnippet(
        "src/cpu/x.cc",
        "// skybyte-lint: allow(unordered-container) fixture reason\n"
        "std::unordered_set<int> a;\n"
        "std::unordered_set<int> b;\n");
    const auto uc = byRule(findings, "unordered-container");
    ASSERT_EQ(uc.size(), 1u);
    EXPECT_EQ(uc[0].line, 3u);
}

TEST(LintPragma, CodeLineAboveDoesNotDonateItsPragma)
{
    // A trailing pragma belongs to its own (code) line; the next line
    // is not covered.
    const auto findings = lintSnippet(
        "src/cpu/x.cc",
        "std::unordered_set<int> a; // skybyte-lint: "
        "allow(unordered-container) fixture reason\n"
        "std::unordered_set<int> b;\n");
    const auto uc = byRule(findings, "unordered-container");
    ASSERT_EQ(uc.size(), 1u);
    EXPECT_EQ(uc[0].line, 2u);
}

TEST(LintPragma, MultipleRulesInOneAllowList)
{
    EXPECT_TRUE(lintSnippet("src/cpu/x.cc",
                            "// skybyte-lint: allow(unordered-container,"
                            "nondeterminism) fixture reason\n"
                            "std::unordered_map<int, int> m; "
                            "int r = std::rand();\n")
                    .empty());
}

TEST(LintPragma, BlockCommentProseAboutPragmasIsInert)
{
    // Doc comments describing the grammar must not parse as pragmas.
    EXPECT_TRUE(lintSnippet("src/core/x.cc",
                            "/* write skybyte-lint: allow(<rule>) "
                            "<justification> to waive */\n"
                            "int a;\n")
                    .empty());
}

// ----------------------------------------------------------- registry

TEST(LintRegistry, BuiltinRulesRegistered)
{
    for (const char *name : {"nondeterminism", "unordered-container",
                             "raw-file-write", "hot-path-alloc"}) {
        const LintRule *rule = findLintRule(name);
        ASSERT_NE(rule, nullptr) << name;
        EXPECT_EQ(rule->name, name);
        EXPECT_FALSE(rule->title.empty());
    }
    EXPECT_EQ(findLintRule("no-such-rule"), nullptr);
}

TEST(LintRegistry, RulesAreNameSorted)
{
    const auto rules = registeredLintRules();
    ASSERT_GE(rules.size(), 4u);
    EXPECT_TRUE(std::is_sorted(rules.begin(), rules.end(),
                               [](const LintRule *a, const LintRule *b) {
                                   return a->name < b->name;
                               }));
}

TEST(LintRegistry, DuplicateRegistrationThrows)
{
    LintRule dup;
    dup.name = "nondeterminism";
    dup.title = "duplicate";
    dup.inScope = [](const std::string &) { return false; };
    dup.check = [](const SourceFile &, std::vector<LintFinding> &) {};
    EXPECT_THROW(registerLintRule(std::move(dup)),
                 std::invalid_argument);
}

// ----------------------------------------------------------- baseline

TEST(LintBaselineTest, KeyAndRoundTrip)
{
    LintFinding f;
    f.rule = "nondeterminism";
    f.file = "src/core/x.cc";
    f.line = 7;
    f.code = "int r = std::rand();";
    EXPECT_EQ(baselineKey(f),
              "nondeterminism\tsrc/core/x.cc\tint r = std::rand();");

    const std::string text = formatLintBaseline({f, f});
    const LintBaseline parsed = parseLintBaseline(text);
    ASSERT_EQ(parsed.entries.size(), 1u);
    EXPECT_EQ(parsed.entries.at(baselineKey(f)), 2u);
}

TEST(LintBaselineTest, ParseSkipsCommentsAndRejectsBadLines)
{
    const LintBaseline parsed = parseLintBaseline(
        "# header\n\nrule\tfile.cc\tsome code\n");
    ASSERT_EQ(parsed.entries.size(), 1u);
    EXPECT_THROW(parseLintBaseline("no tabs here\n"),
                 std::invalid_argument);
}

TEST(LintBaselineTest, NewFindingIsFresh)
{
    LintFinding f;
    f.rule = "r";
    f.file = "f.cc";
    f.code = "bad();";
    const BaselineDiff diff = diffAgainstBaseline({f}, LintBaseline{});
    ASSERT_EQ(diff.fresh.size(), 1u);
    EXPECT_TRUE(diff.stale.empty());
}

TEST(LintBaselineTest, GrandfatheredFindingIsClean)
{
    LintFinding f;
    f.rule = "r";
    f.file = "f.cc";
    f.code = "bad();";
    LintBaseline base;
    base.entries[baselineKey(f)] = 1;
    const BaselineDiff diff = diffAgainstBaseline({f}, base);
    EXPECT_TRUE(diff.fresh.empty());
    EXPECT_TRUE(diff.stale.empty());
}

TEST(LintBaselineTest, FixedFindingLeavesStaleEntry)
{
    LintFinding f;
    f.rule = "r";
    f.file = "f.cc";
    f.code = "bad();";
    LintBaseline base;
    base.entries[baselineKey(f)] = 1;
    const BaselineDiff diff = diffAgainstBaseline({}, base);
    EXPECT_TRUE(diff.fresh.empty());
    ASSERT_EQ(diff.stale.size(), 1u);
    EXPECT_EQ(diff.stale[0], baselineKey(f));
}

TEST(LintBaselineTest, MultisetSemantics)
{
    LintFinding f;
    f.rule = "r";
    f.file = "f.cc";
    f.code = "bad();";
    LintBaseline base;
    base.entries[baselineKey(f)] = 2;

    // Three findings against two grandfathered: one is fresh.
    const BaselineDiff over = diffAgainstBaseline({f, f, f}, base);
    EXPECT_EQ(over.fresh.size(), 1u);
    EXPECT_TRUE(over.stale.empty());

    // One finding against two grandfathered: one entry is stale.
    const BaselineDiff under = diffAgainstBaseline({f}, base);
    EXPECT_TRUE(under.fresh.empty());
    EXPECT_EQ(under.stale.size(), 1u);
}

// ----------------------------------------------------- collectLintFiles

TEST(LintCollect, FiltersAndSorts)
{
    namespace fs = std::filesystem;
    const fs::path root =
        fs::path(::testing::TempDir()) / "skybyte_lint_collect";
    fs::remove_all(root);
    fs::create_directories(root / "src" / "core");
    fs::create_directories(root / "tools");
    fs::create_directories(root / "bench");
    fs::create_directories(root / "tests");
    const auto touch = [](const fs::path &p) {
        std::ofstream(p.string()) << "int x;\n";
    };
    touch(root / "src" / "core" / "b.cc");
    touch(root / "src" / "a.h");
    touch(root / "src" / "notes.txt");
    touch(root / "tools" / "t.cc");
    touch(root / "bench" / "m.h");
    touch(root / "tests" / "ignored.cc");

    const auto files = collectLintFiles(root.string());
    EXPECT_EQ(files,
              (std::vector<std::string>{"bench/m.h", "src/a.h",
                                        "src/core/b.cc", "tools/t.cc"}));
    fs::remove_all(root);

    EXPECT_THROW(collectLintFiles((root / "nope").string()),
                 std::runtime_error);
}

} // namespace
} // namespace skybyte
