/**
 * @file
 * Tests for FTL wear accounting and wear-aware block allocation: erase
 * counts track GC erases exactly, write amplification is computed from
 * host vs relocated programs, the wear summary is internally coherent,
 * and least-erased allocation bounds the P/E spread under a skewed
 * rewrite stream that LIFO free-list reuse keeps hammering.
 */

#include <gtest/gtest.h>

#include "ssd/ftl.h"

namespace skybyte {
namespace {

FlashConfig
smallFlash(bool wear_aware)
{
    FlashConfig cfg;
    cfg.channels = 1;
    cfg.chipsPerChannel = 2;
    cfg.diesPerChip = 2;
    cfg.blocksPerPlane = 8; // 32 blocks total on the channel
    cfg.pagesPerBlock = 8;
    cfg.wearAwareAllocation = wear_aware;
    return cfg;
}

/** Rewrite a small hot set until GC has erased many blocks. */
std::uint64_t
hammer(Ftl &ftl, EventQueue &eq, std::uint64_t hot_pages,
       std::uint64_t writes)
{
    PageData data{};
    Tick t = 0;
    for (std::uint64_t i = 0; i < writes; ++i) {
        ftl.writePage(i % hot_pages, t, data, nullptr);
        eq.run();
        t = eq.now();
    }
    return ftl.stats().gcErases;
}

TEST(Wear, EraseCountsMatchGcErases)
{
    EventQueue eq;
    Ftl ftl(smallFlash(false), eq, 1);
    const std::uint64_t erases = hammer(ftl, eq, 16, 1500);
    ASSERT_GT(erases, 0u) << "workload too small to trigger GC";
    const Ftl::WearSummary w = ftl.wearSummary();
    // The mean wear times the block count equals the total erases.
    const double blocks = 32.0;
    EXPECT_NEAR(w.meanErase * blocks, static_cast<double>(erases),
                0.5);
    EXPECT_LE(w.minErase, w.maxErase);
    EXPECT_GE(w.meanErase, static_cast<double>(w.minErase));
    EXPECT_LE(w.meanErase, static_cast<double>(w.maxErase));
}

TEST(Wear, WriteAmplificationAtLeastOneAndGrowsWithGc)
{
    EventQueue eq;
    Ftl ftl(smallFlash(false), eq, 1);
    EXPECT_DOUBLE_EQ(ftl.writeAmplification(), 1.0); // nothing written
    hammer(ftl, eq, 16, 200); // small: likely little GC yet
    const double early = ftl.writeAmplification();
    EXPECT_GE(early, 1.0);
    hammer(ftl, eq, 16, 2000);
    const double late = ftl.writeAmplification();
    EXPECT_GE(late, early - 1e-9);
    // Relocations happened, so amplification is strictly above 1.
    if (ftl.stats().gcPageMoves > 0) {
        EXPECT_GT(late, 1.0);
    }
}

TEST(Wear, FreshDeviceHasZeroWear)
{
    EventQueue eq;
    Ftl ftl(smallFlash(false), eq, 1);
    const Ftl::WearSummary w = ftl.wearSummary();
    EXPECT_EQ(w.minErase, 0u);
    EXPECT_EQ(w.maxErase, 0u);
    EXPECT_DOUBLE_EQ(w.meanErase, 0.0);
    EXPECT_EQ(w.spread(), 0u);
}

TEST(Wear, WearAwareAllocationBoundsTheSpread)
{
    // Same skewed stream on both policies. LIFO reuse recycles the
    // most recently erased block immediately; least-erased allocation
    // spreads the erases across the whole channel.
    EventQueue eq_lifo;
    Ftl lifo(smallFlash(false), eq_lifo, 1);
    hammer(lifo, eq_lifo, 16, 4000);

    EventQueue eq_wear;
    Ftl wear(smallFlash(true), eq_wear, 1);
    hammer(wear, eq_wear, 16, 4000);

    ASSERT_GT(lifo.stats().gcErases, 0u);
    ASSERT_GT(wear.stats().gcErases, 0u);
    EXPECT_LE(wear.wearSummary().spread(),
              lifo.wearSummary().spread());
    // And wear leveling does not change how much work was done.
    EXPECT_EQ(lifo.stats().hostPrograms, wear.stats().hostPrograms);
}

TEST(Wear, FunctionalDataSurvivesWearLeveling)
{
    EventQueue eq;
    Ftl ftl(smallFlash(true), eq, 1);
    PageData data{};
    // Tag each hot page with a distinct value, churn, verify.
    for (std::uint64_t round = 0; round < 120; ++round) {
        for (std::uint64_t lpn = 0; lpn < 16; ++lpn) {
            data[0] = round * 100 + lpn;
            ftl.writePage(lpn, eq.now(), data, nullptr);
            eq.run();
        }
    }
    for (std::uint64_t lpn = 0; lpn < 16; ++lpn)
        EXPECT_EQ(ftl.pageData(lpn)[0], 119 * 100 + lpn);
}

} // namespace
} // namespace skybyte
