/**
 * @file
 * Tests for the DRAM timing/functional model and the CXL link: fixed
 * latency, bandwidth queueing, channel spreading, functional payloads,
 * protocol latency and NDR opcodes.
 */

#include <gtest/gtest.h>

#include "cxl/cxl.h"
#include "mem/dram.h"

namespace skybyte {
namespace {

TEST(Dram, ReadLatencyIsAccessPlusTransfer)
{
    EventQueue eq;
    DramModel dram(eq, nsToTicks(70.0), 1, 64.0); // 64 B/ns
    Tick done = 0;
    MemRequest req;
    req.lineAddr = 0x1000;
    dram.read(req, 0, [&](const MemResponse &) { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, nsToTicks(70.0) + nsToTicks(1.0));
}

TEST(Dram, BandwidthSerializesSameChannel)
{
    EventQueue eq;
    DramModel dram(eq, 0, 1, 1.0); // 1 B/ns, zero latency, 1 channel
    const Tick t1 = dram.serviceAt(0, 64, 0);
    const Tick t2 = dram.serviceAt(0, 64, kCachelineBytes);
    EXPECT_EQ(t1, nsToTicks(64.0));
    EXPECT_EQ(t2, nsToTicks(128.0)); // queued behind the first
}

TEST(Dram, ChannelsSpreadPageAlignedTraffic)
{
    EventQueue eq;
    DramModel dram(eq, 0, 8, 1.0);
    // 4 KB-aligned addresses must not all land on one channel (this was
    // a real bug: plain modulo pinned page installs to channel 0).
    Tick worst = 0;
    for (int i = 0; i < 16; ++i) {
        const Tick done = dram.serviceAt(
            0, kPageBytes, static_cast<Addr>(i) * kPageBytes);
        worst = std::max(worst, done);
    }
    // Perfect spread would be 2 pages per channel = 8192 ns; a single
    // channel would be 65536 ns. Require clearly better than serial.
    EXPECT_LT(worst, nsToTicks(30000.0));
}

TEST(Dram, FunctionalStoreReadsBack)
{
    EventQueue eq;
    DramModel dram(eq, nsToTicks(10.0), 2, 16.0);
    MemRequest wr;
    wr.lineAddr = 0x40;
    wr.isWrite = true;
    wr.value = 77;
    dram.write(wr, 0);
    LineValue got = 0;
    MemRequest rd;
    rd.lineAddr = 0x40;
    dram.read(rd, 0, [&](const MemResponse &r) { got = r.value; });
    eq.run();
    EXPECT_EQ(got, 77u);
    EXPECT_EQ(dram.peek(0x40), 77u);
    EXPECT_EQ(dram.peek(0x80), 0u);
    dram.poke(0x80, 5);
    EXPECT_EQ(dram.peek(0x80), 5u);
}

TEST(Dram, CountsTraffic)
{
    EventQueue eq;
    DramModel dram(eq, 0, 1, 16.0);
    MemRequest req;
    dram.read(req, 0, [](const MemResponse &) {});
    dram.write(req, 0);
    eq.run();
    EXPECT_EQ(dram.reads(), 1u);
    EXPECT_EQ(dram.writes(), 1u);
    EXPECT_EQ(dram.bytesTransferred(), 2u * kCachelineBytes);
}

TEST(CxlLink, ProtocolLatencyApplied)
{
    EventQueue eq;
    CxlConfig cfg;
    CxlLink link(eq, cfg);
    const Tick t = link.deliverToDevice(0, 16);
    EXPECT_EQ(t, cfg.protocolLatency + nsToTicks(1.0));
}

TEST(CxlLink, DirectionsAreIndependent)
{
    EventQueue eq;
    CxlConfig cfg;
    cfg.bytesPerNs = 1.0; // slow link to expose queueing
    CxlLink link(eq, cfg);
    const Tick a = link.deliverToDevice(0, 4096);
    const Tick b = link.deliverToHost(0, 4096);
    EXPECT_EQ(a, b); // no cross-direction interference
    const Tick c = link.deliverToDevice(0, 4096);
    EXPECT_GT(c, a); // same direction queues
}

TEST(CxlLink, TracksBytesAndTags)
{
    EventQueue eq;
    CxlLink link(eq, CxlConfig{});
    link.deliverToDevice(0, 64);
    link.deliverToHost(0, 64);
    EXPECT_EQ(link.bytesTransferred(), 128u);
    const std::uint16_t t0 = link.nextTag();
    EXPECT_EQ(link.nextTag(), static_cast<std::uint16_t>(t0 + 1));
}

TEST(CxlOpcodes, SkyByteDelayUsesReservedEncoding)
{
    // Figure 8: SkyByte claims the 0b111 reserved NDR opcode.
    EXPECT_EQ(static_cast<int>(CxlNdrOpcode::SkyByteDelay), 0b111);
    EXPECT_EQ(static_cast<int>(CxlNdrOpcode::Cmp), 0b000);
    EXPECT_EQ(static_cast<int>(CxlNdrOpcode::BiConflictAck), 0b100);
}

} // namespace
} // namespace skybyte
