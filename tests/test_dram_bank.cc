/**
 * @file
 * Tests for the bank/row-buffer DRAM timing model (Table II speed
 * grades): preset constants, row hit/miss/conflict ordering, bank busy
 * serialization, row-locality behaviour of streams, functional
 * consistency, and a full-system smoke run with banked timing on both
 * the host DDR5 and the SSD LPDDR4.
 */

#include <gtest/gtest.h>

#include "mem/dram.h"
#include "sim/experiment.h"
#include "sim/system.h"

namespace skybyte {
namespace {

/** One channel, one bank: fully deterministic bank behaviour. */
DramBankTiming
oneBank()
{
    DramBankTiming t;
    t.banksPerChannel = 1;
    t.rowBytes = 8192;
    t.tCas = nsToTicks(15.0);
    t.tRcd = nsToTicks(16.0);
    t.tRp = nsToTicks(16.0);
    t.controllerLatency = nsToTicks(20.0);
    return t;
}

TEST(DramBank, PresetsMatchTableII)
{
    const DramBankTiming ddr5 = ddr5BankTiming();
    EXPECT_EQ(ddr5.banksPerChannel, 32u);
    EXPECT_EQ(ddr5.tCas, nsToTicks(36 / 2.4)); // CL36 at 2400 MHz
    EXPECT_EQ(ddr5.tRcd, nsToTicks(38 / 2.4));
    EXPECT_EQ(ddr5.tRp, nsToTicks(38 / 2.4));
    EXPECT_TRUE(ddr5.enabled());

    const DramBankTiming lp4 = lpddr4BankTiming();
    EXPECT_EQ(lp4.banksPerChannel, 8u);
    EXPECT_EQ(lp4.tCas, nsToTicks(16 / 1.6)); // CL16 at 1600 MHz
    EXPECT_EQ(lp4.tRcd, nsToTicks(18 / 1.6));
    EXPECT_EQ(lp4.tRp, nsToTicks(18 / 1.6));
}

TEST(DramBank, DisabledByDefault)
{
    EventQueue eq;
    DramModel host(eq, HostDramConfig{});
    DramModel ssd(eq, SsdDramConfig{});
    EXPECT_FALSE(host.bankModelEnabled());
    EXPECT_FALSE(ssd.bankModelEnabled());
    EXPECT_FALSE(DramBankTiming{}.enabled());
}

TEST(DramBank, HitMissConflictLatencyOrdering)
{
    EventQueue eq;
    DramModel dram(eq, 0, 1, 38.4, oneBank());
    // Space the requests far apart so bank/channel queues are idle and
    // the return value isolates the core latency.
    const Tick gap = usToTicks(10.0);
    const Tick t1 = gap;
    const Tick miss = dram.serviceAt(t1, 64, 0) - t1; // closed bank
    const Tick t2 = 2 * gap;
    const Tick hit = dram.serviceAt(t2, 64, 64) - t2; // same row
    const Tick t3 = 3 * gap;
    const Tick conflict =
        dram.serviceAt(t3, 64, 4 * 8192) - t3; // other row, open bank
    EXPECT_LT(hit, miss);
    EXPECT_LT(miss, conflict);
    EXPECT_EQ(dram.rowHits(), 1u);
    EXPECT_EQ(dram.rowMisses(), 1u);
    EXPECT_EQ(dram.rowConflicts(), 1u);
    // The deltas are exactly the activate / precharge components.
    EXPECT_EQ(miss - hit, oneBank().tRcd);
    EXPECT_EQ(conflict - miss, oneBank().tRp);
}

TEST(DramBank, SequentialStreamIsRowFriendly)
{
    EventQueue eq;
    DramModel dram(eq, 0, 1, 38.4, oneBank());
    Tick t = 0;
    for (Addr a = 0; a < 4 * 8192; a += 64)
        t = dram.serviceAt(t, 64, a);
    // One activation per 8 KB row, hits for the other 127 lines.
    EXPECT_EQ(dram.rowMisses() + dram.rowConflicts(), 4u);
    EXPECT_EQ(dram.rowHits(), 4u * 127u);
}

TEST(DramBank, RandomStrideStreamThrashesRowBuffer)
{
    EventQueue eq;
    DramModel dram(eq, 0, 1, 38.4, oneBank());
    Tick t = 0;
    // Alternate between two rows: every access closes the other row.
    for (int i = 0; i < 64; ++i)
        t = dram.serviceAt(t, 64, (i % 2) * 16 * 8192);
    EXPECT_EQ(dram.rowHits(), 0u);
    EXPECT_GE(dram.rowConflicts(), 62u);
}

TEST(DramBank, BusyBankSerializesBackToBackRequests)
{
    EventQueue eq;
    DramModel dram(eq, 0, 1, 38.4, oneBank());
    const Tick first = dram.serviceAt(0, 64, 0);
    // Issued at the same instant, the second request must wait for the
    // first one's data transfer before its column command.
    const Tick second = dram.serviceAt(0, 64, 64);
    EXPECT_GT(second, first);
}

TEST(DramBank, FunctionalStoreUnaffectedByTimingModel)
{
    EventQueue eq;
    HostDramConfig cfg;
    cfg.bank = ddr5BankTiming();
    DramModel dram(eq, cfg);
    ASSERT_TRUE(dram.bankModelEnabled());
    dram.poke(128, 77);
    EXPECT_EQ(dram.peek(128), 77u);
    MemRequest req;
    req.lineAddr = 128;
    LineValue got = 0;
    dram.read(req, 0, [&](const MemResponse &resp) { got = resp.value; });
    eq.run();
    EXPECT_EQ(got, 77u);
}

TEST(DramBank, MoreBanksReduceConflicts)
{
    // The same row-alternating stream on 1 bank vs many banks: with
    // enough banks the two rows live in different row buffers.
    DramBankTiming many = oneBank();
    many.banksPerChannel = 64;
    EventQueue eq;
    DramModel narrow(eq, 0, 1, 38.4, oneBank());
    DramModel wide(eq, 0, 1, 38.4, many);
    Tick tn = 0;
    Tick tw = 0;
    for (int i = 0; i < 64; ++i) {
        const Addr addr = (i % 2) * 16 * 8192;
        tn = narrow.serviceAt(tn, 64, addr);
        tw = wide.serviceAt(tw, 64, addr);
    }
    EXPECT_GT(narrow.rowConflicts(), wide.rowConflicts());
    EXPECT_GT(wide.rowHits(), narrow.rowHits());
}

TEST(DramBank, SystemRunsWithBankedTimingOnBothDevices)
{
    SimConfig fixed = makeConfig("SkyByte-Full");
    SimConfig banked = fixed;
    banked.hostDram.bank = ddr5BankTiming();
    banked.ssdDram.bank = lpddr4BankTiming();
    ExperimentOptions opt;
    opt.instrPerThread = 10'000;
    opt.footprintBytes = 16ULL * 1024 * 1024;
    System a(fixed, "ycsb", makeParams(fixed, opt));
    System b(banked, "ycsb", makeParams(banked, opt));
    const SimResult ra = a.run(kTickMax);
    const SimResult rb = b.run(kTickMax);
    ASSERT_FALSE(ra.timedOut);
    ASSERT_FALSE(rb.timedOut);
    EXPECT_EQ(ra.committedInstructions, rb.committedInstructions);
    // Banked timing shifts latency but stays in the same regime: the
    // fixed 70 ns / 100 ns figures are calibrated averages of the same
    // devices.
    EXPECT_LT(static_cast<double>(rb.execTime),
              static_cast<double>(ra.execTime) * 3.0);
    EXPECT_GT(static_cast<double>(rb.execTime),
              static_cast<double>(ra.execTime) * 0.33);
}

} // namespace
} // namespace skybyte
