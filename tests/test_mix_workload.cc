/**
 * @file
 * Tests for the `mix:` co-location combinator: grammar round-trips and
 * error paths, the round-robin thread-assignment policy, footprint
 * namespacing (tenants never alias device pages), refill-routing
 * determinism (the per-thread stream is invariant under refill
 * granularity, mirroring the PR 3 batched-vs-single-record pins), the
 * single-tenant degeneration guarantee (`mix:a=zipf` is bit-identical
 * to plain `zipf`), and the checked-in `colocation` sweep reference.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "sim/config_file.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/sweep.h"
#include "sim/system.h"
#include "trace/mix_workload.h"
#include "trace/workload.h"
#include "trace/workload_spec.h"

namespace skybyte {
namespace {

TEST(MixSpecParser, RoundTripsTenantEntries)
{
    const std::string text =
        "mix:a=zipf:theta=0.9,footprint=4M;b=scan:threads=2";
    const WorkloadSpec spec = parseWorkloadSpec(text);
    EXPECT_TRUE(spec.isMix());
    ASSERT_EQ(spec.args.size(), 2u);
    EXPECT_EQ(spec.args[0].first, "a");
    EXPECT_EQ(spec.args[0].second, "zipf:theta=0.9,footprint=4M");
    EXPECT_EQ(spec.args[1].first, "b");
    EXPECT_EQ(spec.args[1].second, "scan:threads=2");
    EXPECT_EQ(spec.text(), text);

    const std::vector<MixTenantSpec> tenants = parseMixTenants(spec);
    ASSERT_EQ(tenants.size(), 2u);
    EXPECT_EQ(tenants[0].tenant, "a");
    EXPECT_EQ(tenants[0].spec.name, "zipf");
    EXPECT_EQ(tenants[0].spec.raw("footprint"), "4M");
    EXPECT_EQ(tenants[1].spec.name, "scan");

    // Re-parsing the canonical text reproduces the spec.
    EXPECT_EQ(parseWorkloadSpec(spec.text()).text(), spec.text());
}

TEST(MixSpecParser, RejectsMalformedMixes)
{
    for (const char *bad : {
             "mix",                      // empty mix
             "mix:",                     // empty tenant list
             "mix:a=",                   // empty child spec
             "mix:=zipf",                // empty tenant name
             "mix:a=zipf;a=scan",        // duplicate tenant name
             "mix:a=zipf;;b=scan",       // empty entry
             "mix:a=zipf;",              // trailing empty entry
             "mix:a=mix:b=zipf",         // nested mix
             "mix:a=zi pf",              // malformed child name
             "mix:a=zipf:theta",         // malformed child arg
             "mix:a b=zipf",             // bad tenant name
         }) {
        EXPECT_THROW(parseWorkloadSpec(bad), std::invalid_argument)
            << "\"" << bad << "\"";
    }
    // Not-a-mix specs must not reach parseMixTenants.
    EXPECT_THROW(parseMixTenants(parseWorkloadSpec("zipf")),
                 std::invalid_argument);
}

TEST(MixSpecParser, MixNameIsReservedInTheRegistry)
{
    WorkloadRegistration reg;
    reg.name = "mix";
    reg.make = [](WorkloadSpecArgs &, const WorkloadParams &)
        -> std::unique_ptr<Workload> { return nullptr; };
    EXPECT_THROW(registerWorkload(std::move(reg)),
                 std::invalid_argument);
}

TEST(MixThreadAssignment, ExplicitCountsAndRoundRobinRemainder)
{
    // b pins 2 of 8 threads; a (implicit) takes the other 6.
    const std::vector<int> counts = mixTenantThreadCounts(8, {-1, 2});
    EXPECT_EQ(counts, (std::vector<int>{6, 2}));

    // All-explicit mixes define their own total (params ignored).
    EXPECT_EQ(mixTenantThreadCounts(8, {3, 2}),
              (std::vector<int>{3, 2}));

    // Remainder spreads round-robin: 7 - 2 = 5 over three implicit
    // tenants -> 2, 2, 1 in declaration order.
    EXPECT_EQ(mixTenantThreadCounts(7, {-1, 2, -1, -1}),
              (std::vector<int>{2, 2, 2, 1}));

    // Over-subscription and starvation are errors.
    EXPECT_THROW(mixTenantThreadCounts(4, {-1, 5}),
                 std::invalid_argument);
    EXPECT_THROW(mixTenantThreadCounts(4, {4, -1}),
                 std::invalid_argument);
    EXPECT_THROW(mixTenantThreadCounts(2, {-1, -1, -1}),
                 std::invalid_argument);
    EXPECT_THROW(mixTenantThreadCounts(4, {}), std::invalid_argument);
}

TEST(MixThreadAssignment, RoundRobinProperty)
{
    // Property sweep: every resolved assignment covers each tid once,
    // honours the per-tenant counts, interleaves round-robin (in any
    // prefix, tenants that still have quota differ by at most one
    // assigned thread), and is deterministic.
    const std::vector<std::vector<int>> patterns = {
        {-1},       {-1, -1},     {2, -1},  {-1, 3},
        {1, 1},     {2, -1, -1},  {-1, -1, -1}, {4, 1, -1},
    };
    for (int total = 1; total <= 12; ++total) {
        for (const std::vector<int> &requested : patterns) {
            std::vector<int> counts;
            try {
                counts = mixTenantThreadCounts(total, requested);
            } catch (const std::invalid_argument &) {
                continue; // over-subscribed combination
            }
            SCOPED_TRACE("total=" + std::to_string(total));
            for (std::size_t i = 0; i < requested.size(); ++i) {
                if (requested[i] >= 0) {
                    EXPECT_EQ(counts[i], requested[i]);
                }
                EXPECT_GE(counts[i], 1);
            }
            const std::vector<int> assignment =
                mixThreadAssignment(counts);
            EXPECT_EQ(assignment, mixThreadAssignment(counts));

            std::vector<int> seen(counts.size(), 0);
            for (std::size_t tid = 0; tid < assignment.size(); ++tid) {
                const int t = assignment[tid];
                ASSERT_GE(t, 0);
                ASSERT_LT(t, static_cast<int>(counts.size()));
                seen[static_cast<std::size_t>(t)]++;
                // Round-robin fairness: among tenants with quota left
                // after this prefix, assigned counts differ by <= 1.
                int lo = INT32_MAX;
                int hi = 0;
                for (std::size_t k = 0; k < counts.size(); ++k) {
                    if (seen[k] < counts[k]) {
                        lo = std::min(lo, seen[k]);
                        hi = std::max(hi, seen[k]);
                    }
                }
                if (lo != INT32_MAX) {
                    EXPECT_LE(hi - lo, 1);
                }
            }
            for (std::size_t k = 0; k < counts.size(); ++k)
                EXPECT_EQ(seen[k], counts[k]);
        }
    }
}

WorkloadParams
smallParams()
{
    WorkloadParams params;
    params.numThreads = 4;
    params.instrPerThread = 3'000;
    params.footprintBytes = 8 * 1024 * 1024;
    return params;
}

TEST(MixWorkloadRouting, TenantsNeverAliasDevicePages)
{
    WorkloadParams params = smallParams();
    params.numThreads = 5;
    auto wl = makeWorkload(
        "mix:a=zipf:theta=0.9,footprint=4M;b=scan:footprint=8M,"
        "threads=2;c=uniform:footprint=4M", params);
    auto *mix = dynamic_cast<MixWorkload *>(wl.get());
    ASSERT_NE(mix, nullptr);
    ASSERT_EQ(mix->tenants().size(), 3u);
    EXPECT_EQ(mix->numThreads(), 5);
    EXPECT_EQ(mix->footprintBytes(),
              16ULL * 1024 * 1024); // 4M + 8M + 4M, page aligned

    // Drain every thread; every device access must land inside its
    // thread's tenant window and every private access inside the
    // global thread's private window.
    for (int tid = 0; tid < mix->numThreads(); ++tid) {
        const MixTenant &tenant =
            mix->tenants()[static_cast<std::size_t>(
                mix->tenantOfThread(tid))];
        const Addr data_lo = Workload::kDataBase + tenant.deviceBase;
        const Addr data_hi = data_lo + tenant.footprintBytes;
        const Addr priv_lo = Workload::kPrivateBase
                             + static_cast<Addr>(tid)
                                   * Workload::kPrivateStride;
        TraceCursor cursor(*mix, tid);
        TraceRecord rec;
        std::uint64_t device_records = 0;
        while (cursor.next(rec)) {
            if (rec.vaddr >= Workload::kDataBase
                && rec.vaddr < Workload::kPrivateBase) {
                EXPECT_GE(rec.vaddr, data_lo);
                EXPECT_LT(rec.vaddr, data_hi);
                device_records++;
                EXPECT_EQ(mix->tenantOfDeviceOffset(
                              rec.vaddr - Workload::kDataBase),
                          mix->tenantOfThread(tid));
            } else {
                EXPECT_GE(rec.vaddr, priv_lo);
                EXPECT_LT(rec.vaddr,
                          priv_lo + Workload::kPrivateStride);
            }
        }
        EXPECT_GT(device_records, 0u) << "thread " << tid;
    }
}

TEST(MixWorkloadRouting, StreamInvariantUnderRefillGranularity)
{
    // The same mix drained through full batches and through
    // one-record TraceCursor pulls must produce identical per-thread
    // record sequences — refill routing cannot depend on granularity.
    const std::string spec =
        "mix:a=zipf:theta=0.8,footprint=4M;b=scan:threads=1";
    WorkloadParams params = smallParams();
    auto batched = makeWorkload(spec, params);
    auto stepped = makeWorkload(spec, params);

    for (int tid = 0; tid < batched->numThreads(); ++tid) {
        SCOPED_TRACE("tid " + std::to_string(tid));
        std::vector<TraceRecord> via_batches;
        TraceBatch batch;
        while (batched->refill(tid, batch) > 0) {
            for (std::uint32_t i = 0; i < batch.count; ++i)
                via_batches.push_back(batch.records[i]);
        }
        std::vector<TraceRecord> via_cursor;
        TraceCursor cursor(*stepped, tid);
        TraceRecord rec;
        while (cursor.next(rec))
            via_cursor.push_back(rec);

        ASSERT_EQ(via_batches.size(), via_cursor.size());
        for (std::size_t i = 0; i < via_batches.size(); ++i) {
            EXPECT_EQ(via_batches[i].vaddr, via_cursor[i].vaddr) << i;
            EXPECT_EQ(via_batches[i].isWrite, via_cursor[i].isWrite);
            EXPECT_EQ(via_batches[i].computeOps,
                      via_cursor[i].computeOps);
        }
    }
}

/**
 * Drop the mix-only report tail (the "tenants" array plus the SLO
 * rollups that follow it) so mix reports compare against plain ones.
 */
std::string
stripTenants(std::string json)
{
    const auto at = json.find("  \"tenants\": [");
    if (at == std::string::npos)
        return json;
    const auto fairness = json.find("\"fairness_ipc\":", at);
    EXPECT_NE(fairness, std::string::npos);
    const auto end = json.find('\n', fairness);
    EXPECT_NE(end, std::string::npos);
    json.erase(at, end + 1 - at);
    const auto comma = json.rfind(",\n", at);
    json.erase(comma, 1); // write_locality_cdf regains last position
    return json;
}

TEST(MixFingerprint, SystemRunInvariantUnderBatchGranularity)
{
    // Mirror of PR 3's BatchedFingerprint for the mix path: a full
    // System run over the batched mix must fingerprint identically to
    // the same run where every record crosses the virtual boundary
    // alone (modulo the per-tenant buckets, which the single-record
    // wrapper hides from the System).
    const std::string spec =
        "mix:a=zipf:theta=0.9,footprint=4M;b=scan:footprint=4M,"
        "threads=2";
    SimConfig cfg = makeBenchConfig("SkyByte-Full");
    WorkloadParams params = smallParams();
    params.seed = cfg.seed;

    System batched(cfg, spec, params);
    const std::string batched_json = toJson(batched.run());

    System stepped(
        cfg,
        std::make_unique<SingleRecordWorkload>(
            makeWorkload(spec, params)),
        [&spec, &params] {
            return std::make_unique<SingleRecordWorkload>(
                makeWorkload(spec, params));
        },
        parseWorkloadSpec(spec).text());
    const std::string stepped_json = toJson(stepped.run());

    EXPECT_NE(batched_json.find("\"tenants\""), std::string::npos);
    EXPECT_EQ(stripTenants(batched_json), stepped_json);
}

TEST(MixFingerprint, SingleTenantMixMatchesPlainWorkload)
{
    // The acceptance pin: mix:a=zipf degenerates to plain zipf with a
    // bit-identical SimResult fingerprint (same report label forced
    // through the bring-your-own-workload constructor; a 1-tenant mix
    // reports no tenant buckets).
    for (const char *inner :
         {"zipf", "zipf:theta=0.8,write_ratio=0.3", "scan:stride=128",
          "ycsb"}) {
        SCOPED_TRACE(inner);
        const std::string mix_spec = std::string("mix:a=") + inner;
        SimConfig cfg = makeBenchConfig("SkyByte-Full");
        WorkloadParams params = smallParams();
        params.seed = cfg.seed;

        System plain(cfg, inner, params);
        const std::string plain_json = toJson(plain.run());

        System mixed(
            cfg, makeWorkload(mix_spec, params),
            [&mix_spec, &params] {
                return makeWorkload(mix_spec, params);
            },
            parseWorkloadSpec(inner).text()); // same report label
        const std::string mixed_json = toJson(mixed.run());

        EXPECT_EQ(mixed_json.find("\"tenants\""), std::string::npos);
        EXPECT_EQ(plain_json, mixed_json) << inner;
    }
}

TEST(MixFingerprint, DuplicateTenantsAreDecorrelated)
{
    // Two identically-parameterized tenants must not replay the same
    // RNG streams (per-tenant seed decorrelation).
    WorkloadParams params = smallParams();
    params.numThreads = 2;
    auto wl = makeWorkload("mix:a=zipf:footprint=4M;b=zipf:footprint=4M",
                           params);
    auto *mix = dynamic_cast<MixWorkload *>(wl.get());
    ASSERT_NE(mix, nullptr);
    // Thread 0 -> tenant a, thread 1 -> tenant b; both are that
    // child's local thread 0.
    TraceBatch ba;
    TraceBatch bb;
    ASSERT_GT(wl->refill(0, ba), 0u);
    ASSERT_GT(wl->refill(1, bb), 0u);
    ASSERT_EQ(ba.count, bb.count);
    const Addr base_b =
        mix->tenants()[1].deviceBase; // normalize namespacing
    bool differs = false;
    for (std::uint32_t i = 0; i < ba.count && !differs; ++i) {
        const Addr a = ba.records[i].vaddr;
        Addr b = bb.records[i].vaddr;
        if (b >= Workload::kDataBase && b < Workload::kPrivateBase)
            b -= base_b;
        differs = a != b || ba.records[i].isWrite != bb.records[i].isWrite;
    }
    EXPECT_TRUE(differs);
}

TEST(MixConfigFile, SpecErrorsCarryLineNumberKeyAndSpecText)
{
    // The satellite fix: an unknown workload arg reported from a
    // config file names the offending key, the full spec text, and
    // the source line.
    std::istringstream in("seed=7\nworkload=zipf:bogus=3\n");
    ExperimentSpec spec;
    try {
        applyConfigStream(in, spec);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
        EXPECT_NE(msg.find("zipf:bogus=3"), std::string::npos) << msg;
    }

    // Same contract for a bad arg buried inside a mix tenant.
    std::istringstream in2(
        "seed=7\n# comment\nworkload=mix:a=zipf:nope=1;b=scan\n");
    ExperimentSpec spec2;
    try {
        applyConfigStream(in2, spec2);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
        EXPECT_NE(msg.find("nope"), std::string::npos) << msg;
        EXPECT_NE(msg.find("tenant a"), std::string::npos) << msg;
    }

    // A valid mix with explicit threads= passes the parse-time
    // typecheck even though the trial is small.
    std::istringstream in3(
        "workload=mix:a=zipf:threads=2,footprint=4M;b=scan\n"
        "num_threads=8\n");
    ExperimentSpec spec3;
    EXPECT_NO_THROW(applyConfigStream(in3, spec3));
    EXPECT_TRUE(spec3.workload.isMix());
}

TEST(ColocationSweep, RegisteredAndConstructible)
{
    const SweepSpec *spec = findSweep("colocation");
    ASSERT_NE(spec, nullptr);
    ASSERT_FALSE(spec->axes.empty());
    EXPECT_EQ(spec->pointCount(), 9u); // 3 mixes x 3 variants
    WorkloadParams params;
    params.numThreads = 8;
    params.instrPerThread = 0;
    for (const std::string &label : spec->axes.front().labels()) {
        EXPECT_TRUE(parseWorkloadSpec(label).isMix()) << label;
        EXPECT_NO_THROW(makeWorkload(label, params)) << label;
    }
}

TEST(ColocationSweep, ReportMatchesCheckedInReference)
{
    // Same serialization path skybyte_sweep --run uses, diffed against
    // the reference report CI pins. Regenerate with:
    //   ./build/skybyte_sweep --run colocation -o
    //   tests/data/colocation.reference.json
    const std::string ref_path =
        std::string(__FILE__).substr(
            0, std::string(__FILE__).rfind('/'))
        + "/data/colocation.reference.json";
    std::ifstream in(ref_path);
    ASSERT_TRUE(in.good()) << ref_path;
    std::string reference((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());

    const SweepSpec *spec = findSweep("colocation");
    ASSERT_NE(spec, nullptr);
    // Fixed options, not optionsFromEnv(): ambient SKYBYTE_BENCH_*
    // variables must not make the reference comparison fail.
    ExperimentOptions opt;
    opt.instrPerThread = spec->defaultInstrPerThread;
    const SweepExecution exec = runSweepShard(*spec, opt);

    SweepReport report;
    report.sweep = spec->name;
    report.totalPoints = exec.totalPoints;
    for (std::size_t i = 0; i < exec.points.size(); ++i) {
        const LabeledPoint &lp = exec.points[i];
        report.entries.push_back(
            {lp.index,
             sweepEntryJson(lp.index, lp.id(), exec.results[i])});
    }
    EXPECT_EQ(toJson(report), reference)
        << "colocation sweep drifted from tests/data/"
           "colocation.reference.json — if the change is intentional, "
           "regenerate the reference";
}

TEST(ColocationSweep, ShardedEqualsUnsharded)
{
    // Shard/merge byte-identity holds for mix workloads too (the CI
    // sweep-shard matrix runs this same split as two jobs).
    const SweepSpec *spec = findSweep("colocation");
    ASSERT_NE(spec, nullptr);
    ExperimentOptions opt;
    opt.instrPerThread = 1'000; // smaller than the sweep default: fast
    const SweepExecution full = runSweepShard(*spec, opt);

    std::vector<SweepReport> shards;
    for (std::uint32_t s = 0; s < 2; ++s) {
        const SweepExecution part =
            runSweepShard(*spec, opt, ShardSpec{s, 2});
        SweepReport report;
        report.sweep = spec->name;
        report.totalPoints = part.totalPoints;
        report.shardIndex = s;
        report.shardCount = 2;
        for (std::size_t i = 0; i < part.points.size(); ++i) {
            const LabeledPoint &lp = part.points[i];
            report.entries.push_back(
                {lp.index,
                 sweepEntryJson(lp.index, lp.id(), part.results[i])});
        }
        shards.push_back(std::move(report));
    }
    SweepReport serial;
    serial.sweep = spec->name;
    serial.totalPoints = full.totalPoints;
    for (std::size_t i = 0; i < full.points.size(); ++i) {
        const LabeledPoint &lp = full.points[i];
        serial.entries.push_back(
            {lp.index,
             sweepEntryJson(lp.index, lp.id(), full.results[i])});
    }
    EXPECT_EQ(toJson(mergeSweepReports(shards)), toJson(serial));
}

} // namespace
} // namespace skybyte
