/**
 * @file
 * Tests for the Figure 8 NDR flit codec and the host-side transaction
 * tag table (§III-A C1/C2): bit layout, reserved-opcode handling,
 * valid-bit semantics, exhaustive tag round-trips, capacity
 * back-pressure, and unknown-tag responses.
 */

#include <gtest/gtest.h>

#include "cxl/ndr.h"

namespace skybyte {
namespace {

TEST(NdrCodec, RoundTripsEveryDefinedOpcode)
{
    for (const CxlNdrOpcode opcode :
         {CxlNdrOpcode::Cmp, CxlNdrOpcode::CmpS, CxlNdrOpcode::CmpE,
          CxlNdrOpcode::BiConflictAck, CxlNdrOpcode::SkyByteDelay}) {
        NdrMessage msg;
        msg.valid = true;
        msg.opcode = opcode;
        msg.tag = 0xbeef;
        const auto decoded = decodeNdr(encodeNdr(msg));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->opcode, opcode);
        EXPECT_EQ(decoded->tag, 0xbeef);
        EXPECT_TRUE(decoded->valid);
    }
}

TEST(NdrCodec, BitLayoutMatchesFigure8)
{
    NdrMessage msg;
    msg.valid = true;
    msg.opcode = CxlNdrOpcode::SkyByteDelay; // 0b111
    msg.tag = 0x1234;
    const NdrFlit flit = encodeNdr(msg);
    EXPECT_EQ(flit & 1, 1u);                   // valid, bit 0
    EXPECT_EQ((flit >> 1) & 0b111, 0b111u);    // opcode, bits 1..3
    EXPECT_EQ((flit >> 4) & 0xf, 0u);          // reserved 4 bits
    EXPECT_EQ((flit >> 8) & 0xffff, 0x1234u);  // tag, bits 8..23
    EXPECT_EQ(flit >> 24, 0u);                 // reserved 16 bits
    EXPECT_LT(flit, 1ULL << kNdrFlitBits);     // fits in 40 bits
}

TEST(NdrCodec, InvalidFlitDecodesToNothing)
{
    NdrMessage msg;
    msg.valid = false;
    msg.opcode = CxlNdrOpcode::Cmp;
    msg.tag = 7;
    EXPECT_FALSE(decodeNdr(encodeNdr(msg)).has_value());
    EXPECT_FALSE(decodeNdr(0).has_value());
}

TEST(NdrCodec, ReservedOpcodesRejected)
{
    for (const std::uint8_t reserved : {0b011, 0b101, 0b110}) {
        EXPECT_FALSE(ndrOpcodeDefined(reserved));
        const NdrFlit flit =
            1ULL | (static_cast<NdrFlit>(reserved) << 1);
        EXPECT_FALSE(decodeNdr(flit).has_value());
    }
    EXPECT_TRUE(ndrOpcodeDefined(0b111)); // SkyByte claims this one
}

TEST(NdrCodec, StrayHighBitsRejected)
{
    NdrMessage msg;
    msg.valid = true;
    msg.tag = 1;
    const NdrFlit flit = encodeNdr(msg) | (1ULL << kNdrFlitBits);
    EXPECT_FALSE(decodeNdr(flit).has_value());
}

TEST(NdrCodec, TagRoundTripsExhaustively)
{
    // Every 256th tag plus the edges: cheap but covers both bytes.
    for (std::uint32_t tag = 0; tag <= 0xffff; tag += 257) {
        NdrMessage msg;
        msg.valid = true;
        msg.opcode = CxlNdrOpcode::SkyByteDelay;
        msg.tag = static_cast<std::uint16_t>(tag);
        const auto decoded = decodeNdr(encodeNdr(msg));
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->tag, tag);
    }
}

TEST(TagTable, AllocateTrackAndComplete)
{
    CxlTagTable table;
    CxlMessage req;
    req.opcode = CxlReqOpcode::MemRd;
    req.lineAddr = 0x1000;
    const auto tag = table.allocate(req);
    ASSERT_TRUE(tag.has_value());
    EXPECT_EQ(table.outstanding(), 1u);
    const CxlMessage *tracked = table.find(*tag);
    ASSERT_NE(tracked, nullptr);
    EXPECT_EQ(tracked->lineAddr, 0x1000u);
    EXPECT_EQ(tracked->tag, *tag);

    const auto done = table.complete(*tag);
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->lineAddr, 0x1000u);
    EXPECT_EQ(table.outstanding(), 0u);
    EXPECT_EQ(table.find(*tag), nullptr);
}

TEST(TagTable, TagsAreUniqueWhileOutstanding)
{
    CxlTagTable table(128);
    CxlMessage req;
    std::vector<std::uint16_t> tags;
    for (int i = 0; i < 128; ++i) {
        const auto tag = table.allocate(req);
        ASSERT_TRUE(tag.has_value());
        tags.push_back(*tag);
    }
    std::sort(tags.begin(), tags.end());
    EXPECT_EQ(std::unique(tags.begin(), tags.end()), tags.end());
}

TEST(TagTable, CapacityBackPressure)
{
    CxlTagTable table(2);
    CxlMessage req;
    const auto a = table.allocate(req);
    const auto b = table.allocate(req);
    ASSERT_TRUE(a && b);
    EXPECT_FALSE(table.allocate(req).has_value());
    EXPECT_EQ(table.stats().rejectedFull, 1u);
    // Releasing one tag frees a slot.
    ASSERT_TRUE(table.complete(*a).has_value());
    EXPECT_TRUE(table.allocate(req).has_value());
}

TEST(TagTable, TagReuseAfterWraparound)
{
    CxlTagTable table(4);
    CxlMessage req;
    // Churn far past the 16-bit counter: allocation must keep finding
    // free tags even when the cursor wraps onto in-flight ones.
    for (int i = 0; i < 70'000; ++i) {
        const auto tag = table.allocate(req);
        ASSERT_TRUE(tag.has_value());
        ASSERT_TRUE(table.complete(*tag).has_value());
    }
    EXPECT_EQ(table.stats().allocated, 70'000u);
    EXPECT_EQ(table.stats().completed, 70'000u);
}

TEST(TagTable, UnknownTagCounted)
{
    CxlTagTable table;
    EXPECT_FALSE(table.complete(42).has_value());
    EXPECT_EQ(table.stats().unknownTagResponses, 1u);
}

TEST(TagTable, DelayHintFindsTheBlockedRequest)
{
    // End-to-end C1->C2->C3 shape: the host tags a MemRd, the SSD
    // answers with a SkyByte-Delay NDR carrying that tag, and the host
    // resolves the tag back to the blocked request.
    CxlTagTable table;
    CxlMessage read;
    read.opcode = CxlReqOpcode::MemRd;
    read.lineAddr = 0xabcd000;
    const auto tag = table.allocate(read);
    ASSERT_TRUE(tag.has_value());

    NdrMessage ndr;
    ndr.valid = true;
    ndr.opcode = CxlNdrOpcode::SkyByteDelay;
    ndr.tag = *tag;
    const auto wire = decodeNdr(encodeNdr(ndr));
    ASSERT_TRUE(wire.has_value());
    ASSERT_EQ(wire->opcode, CxlNdrOpcode::SkyByteDelay);

    const auto blocked = table.complete(wire->tag);
    ASSERT_TRUE(blocked.has_value());
    EXPECT_EQ(blocked->lineAddr, 0xabcd000u);
}

} // namespace
} // namespace skybyte
