/**
 * @file
 * Tests for the workload spec front end and the batched stream API:
 * spec-parser grammar and error paths, registry completeness (every
 * paper workload present, every registered name constructible), and
 * the headline equivalence guarantee — a full System run consuming
 * batched refills produces a bit-identical SimResult fingerprint to
 * the same run consuming one record per virtual call (the seed
 * contract, reproduced by SingleRecordWorkload).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/sweep.h"
#include "sim/system.h"
#include "trace/workload.h"
#include "trace/workload_spec.h"

namespace skybyte {
namespace {

TEST(WorkloadSpecParser, BareNameHasNoArgs)
{
    const WorkloadSpec spec = parseWorkloadSpec("ycsb");
    EXPECT_EQ(spec.name, "ycsb");
    EXPECT_TRUE(spec.args.empty());
    EXPECT_EQ(spec.text(), "ycsb");
}

TEST(WorkloadSpecParser, ArgsParseInOrder)
{
    const WorkloadSpec spec =
        parseWorkloadSpec("zipf:theta=0.99,footprint=8G,compute=2");
    EXPECT_EQ(spec.name, "zipf");
    ASSERT_EQ(spec.args.size(), 3u);
    EXPECT_EQ(spec.args[0].first, "theta");
    EXPECT_EQ(spec.args[0].second, "0.99");
    EXPECT_EQ(spec.raw("footprint"), "8G");
    EXPECT_TRUE(spec.has("compute"));
    EXPECT_FALSE(spec.has("stride"));
    EXPECT_EQ(spec.text(), "zipf:theta=0.99,footprint=8G,compute=2");
}

TEST(WorkloadSpecParser, RejectsMalformedSpecs)
{
    for (const char *bad :
         {"", ":theta=1", "zipf:", "zipf:theta", "zipf:=0.9",
          "zipf:theta=", "zipf:theta=0.9,theta=0.8", "zipf,theta=0.9",
          "zi pf:theta=0.9", "zipf:theta=0.9,,compute=1"}) {
        EXPECT_THROW(parseWorkloadSpec(bad), std::invalid_argument)
            << "\"" << bad << "\"";
    }
}

TEST(WorkloadSpecParser, ByteSuffixes)
{
    EXPECT_EQ(parseByteSize("4096", "x"), 4096u);
    EXPECT_EQ(parseByteSize("512K", "x"), 512u * 1024);
    EXPECT_EQ(parseByteSize("8m", "x"), 8u * 1024 * 1024);
    EXPECT_EQ(parseByteSize("2G", "x"), 2ULL * 1024 * 1024 * 1024);
    EXPECT_THROW(parseByteSize("12Q", "x"), std::invalid_argument);
    EXPECT_THROW(parseByteSize("G", "x"), std::invalid_argument);
    EXPECT_THROW(parseByteSize("", "x"), std::invalid_argument);
    // stoull would wrap negatives to huge values; reject them.
    EXPECT_THROW(parseByteSize("-1", "x"), std::invalid_argument);
    EXPECT_THROW(parseByteSize("-4K", "x"), std::invalid_argument);
    EXPECT_THROW(parseByteSize("+4", "x"), std::invalid_argument);
    // Suffix multiplication must not wrap mod 2^64 (2^54 * 2^30).
    EXPECT_THROW(parseByteSize("18014398509481984G", "x"),
                 std::invalid_argument);
}

TEST(WorkloadSpecParser, RejectsNegativeAndNonFiniteValues)
{
    WorkloadParams params;
    // footprint=-1 must not wrap to 2^64-1 and reclassify every
    // access as host DRAM.
    EXPECT_THROW(makeWorkload("scan:footprint=-1", params),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("uniform:compute=-3", params),
                 std::invalid_argument);
    // NaN compares false against every range guard; it must be
    // rejected before the guards run.
    EXPECT_THROW(makeWorkload("zipf:theta=nan", params),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("zipf:write_ratio=nan", params),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("zipf:theta=inf", params),
                 std::invalid_argument);
    // Values that would truncate through a narrowing cast must error,
    // not silently run a different experiment.
    EXPECT_THROW(makeWorkload("uniform:threads=4294967298", params),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("uniform:compute=4294967300", params),
                 std::invalid_argument);
    // Args that would otherwise be silently rounded/clamped.
    EXPECT_THROW(makeWorkload("scan:stride=100", params),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("scan:stride=0", params),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("ptrchase:chain=0", params),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("phased:phase_instr=0", params),
                 std::invalid_argument);
}

TEST(WorkloadSpecArgsTyped, ConsumptionTracking)
{
    const WorkloadSpec spec = parseWorkloadSpec("uniform:compute=7");
    WorkloadSpecArgs args(spec);
    EXPECT_EQ(args.u64("compute", 4), 7u);
    EXPECT_EQ(args.u64("absent", 11), 11u);
    EXPECT_NO_THROW(args.requireAllConsumed("uniform"));

    WorkloadSpecArgs untouched(spec);
    EXPECT_THROW(untouched.requireAllConsumed("uniform"),
                 std::invalid_argument);
}

TEST(WorkloadRegistry, PaperWorkloadsAllRegistered)
{
    const std::vector<std::string> names = registeredWorkloadNames();
    for (const std::string &paper : paperWorkloadNames()) {
        EXPECT_NE(std::find(names.begin(), names.end(), paper),
                  names.end())
            << paper;
        const WorkloadRegistration *reg = findWorkload(paper);
        ASSERT_NE(reg, nullptr) << paper;
        EXPECT_TRUE(reg->paper) << paper;
        EXPECT_GT(reg->info.paperFootprintGb, 0.0) << paper;
    }
}

TEST(WorkloadRegistry, EveryRegisteredNameIsConstructible)
{
    WorkloadParams params;
    params.numThreads = 2;
    params.instrPerThread = 1'000;
    params.footprintBytes = 4 * 1024 * 1024;
    for (const std::string &name : registeredWorkloadNames()) {
        // Replay entries need a capture file argument; they are
        // covered by tests/test_trace_log.cc.
        if (findWorkload(name)->replay)
            continue;
        auto wl = makeWorkload(name, params);
        ASSERT_NE(wl, nullptr) << name;
        EXPECT_EQ(wl->name(), name);
        EXPECT_EQ(wl->numThreads(), 2) << name;
        // The stream must actually produce records.
        TraceBatch batch;
        EXPECT_GT(wl->refill(0, batch), 0u) << name;
    }
}

TEST(WorkloadRegistry, AtLeastThreeNonPaperScenarios)
{
    int scenarios = 0;
    for (const std::string &name : registeredWorkloadNames()) {
        const WorkloadRegistration *reg = findWorkload(name);
        ASSERT_NE(reg, nullptr);
        if (!reg->paper && !reg->argHelp.empty())
            scenarios++;
    }
    EXPECT_GE(scenarios, 3);
}

TEST(WorkloadRegistry, UnknownNameErrorListsRegisteredNames)
{
    WorkloadParams params;
    try {
        makeWorkload("definitely-not-a-workload", params);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("definitely-not-a-workload"),
                  std::string::npos);
        for (const std::string &name : registeredWorkloadNames())
            EXPECT_NE(msg.find(name), std::string::npos) << name;
    }
}

TEST(WorkloadRegistry, RejectsDuplicatesAndBadArgs)
{
    WorkloadRegistration dup;
    dup.name = "uniform";
    dup.make = [](WorkloadSpecArgs &, const WorkloadParams &)
        -> std::unique_ptr<Workload> { return nullptr; };
    EXPECT_THROW(registerWorkload(std::move(dup)),
                 std::invalid_argument);

    WorkloadParams params;
    EXPECT_THROW(makeWorkload("zipf:theta=0", params),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("zipf:theta=1.2", params),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("zipf:write_ratio=1.5", params),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("zipf:bogus=1", params),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("uniform:threads=0", params),
                 std::invalid_argument);
}

TEST(WorkloadRegistry, UserWorkloadReachableViaSpec)
{
    WorkloadRegistration reg;
    reg.name = "test-constant";
    reg.summary = "single fixed-address scenario for registry tests";
    reg.argHelp = "compute=";
    reg.info = {"test", 0.1, 0.0, 1.0};
    reg.make = [](WorkloadSpecArgs &args, const WorkloadParams &params)
        -> std::unique_ptr<Workload> {
        class ConstWorkload : public Workload
        {
          public:
            ConstWorkload(const WorkloadParams &p, std::uint32_t compute)
                : params_(p), compute_(compute),
                  emitted_(static_cast<std::size_t>(p.numThreads), 0)
            {}
            std::string name() const override { return "test-constant"; }
            std::uint64_t footprintBytes() const override
            {
                return 1 << 20;
            }
            int numThreads() const override { return params_.numThreads; }
            std::uint64_t instructionsEmitted(int tid) const override
            {
                return emitted_[static_cast<std::size_t>(tid)];
            }
            std::uint32_t
            refill(int tid, TraceBatch &batch) override
            {
                auto t = static_cast<std::size_t>(tid);
                std::uint32_t n = 0;
                while (n < TraceBatch::kCapacity
                       && emitted_[t] < params_.instrPerThread) {
                    batch.records[n++] = {compute_, false, kDataBase};
                    emitted_[t] += compute_ + 1;
                }
                batch.count = n;
                batch.cursor = 0;
                return n;
            }

          private:
            WorkloadParams params_;
            std::uint32_t compute_;
            std::vector<std::uint64_t> emitted_;
        };
        return std::make_unique<ConstWorkload>(
            params, static_cast<std::uint32_t>(args.u64("compute", 3)));
    };
    registerWorkload(std::move(reg));

    WorkloadParams params;
    params.numThreads = 1;
    params.instrPerThread = 100;
    auto wl = makeWorkload("test-constant:compute=9", params);
    TraceCursor cursor(*wl, 0);
    TraceRecord rec;
    ASSERT_TRUE(cursor.next(rec));
    EXPECT_EQ(rec.computeOps, 9u);
    EXPECT_EQ(rec.vaddr, Workload::kDataBase);
}

/**
 * The headline guarantee: batching is invisible to the simulation.
 * Running a full System with the batched workload must produce a
 * bit-identical SimResult fingerprint (the serialized JSON) to the
 * same run where every record crosses the virtual boundary alone —
 * the seed's per-record contract, reproduced by SingleRecordWorkload
 * for both the main workload and the warmup pass.
 */
class BatchedFingerprint : public ::testing::TestWithParam<std::string>
{};

TEST_P(BatchedFingerprint, MatchesSingleRecordPath)
{
    const std::string spec = GetParam();
    SimConfig cfg = makeBenchConfig("SkyByte-Full");
    WorkloadParams params;
    params.numThreads = 4;
    params.instrPerThread = 3'000;
    params.footprintBytes = 8 * 1024 * 1024;
    params.seed = cfg.seed;

    System batched(cfg, spec, params);
    const std::string batched_json = toJson(batched.run());

    System stepped(
        cfg,
        std::make_unique<SingleRecordWorkload>(
            makeWorkload(spec, params)),
        [&spec, &params] {
            return std::make_unique<SingleRecordWorkload>(
                makeWorkload(spec, params));
        },
        parseWorkloadSpec(spec).text()); // same report label
    const std::string stepped_json = toJson(stepped.run());

    EXPECT_EQ(batched_json, stepped_json) << spec;
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistered, BatchedFingerprint,
    ::testing::Values("bc", "bfs-dense", "dlrm", "radix", "srad",
                      "tpcc", "ycsb", "uniform",
                      "zipf:theta=0.9,write_ratio=0.3",
                      "scan:stride=256,write_ratio=0.1",
                      "ptrchase:chain=16", "phased:phase_instr=4000"));

TEST(BatchedFingerprintCoverage, EveryBuiltinWorkloadIsPinned)
{
    // If a new generator is registered, it must be added to the
    // fingerprint suite above (user registrations from other tests in
    // this binary are exempt).
    const std::vector<std::string> pinned = {
        "bc", "bfs-dense", "dlrm", "radix", "srad", "tpcc", "ycsb",
        "uniform", "zipf", "scan", "ptrchase", "phased",
    };
    for (const std::string &name : registeredWorkloadNames()) {
        if (name.rfind("test-", 0) == 0)
            continue;
        // Replay workloads have no default record stream to pin; their
        // tracelog-vs-flat fingerprints live in tests/test_trace_log.cc.
        if (findWorkload(name)->replay)
            continue;
        EXPECT_NE(std::find(pinned.begin(), pinned.end(), name),
                  pinned.end())
            << "add " << name << " to the BatchedFingerprint suite";
    }
}

TEST(SpecDrivenRun, SweepPointAcceptsSpecStrings)
{
    // The sweep registry's workload axis carries spec strings; a point
    // built from one must run end to end.
    ExperimentOptions opt;
    opt.instrPerThread = 1'000;
    SweepPoint point =
        makeSweepPoint("Base-CSSD", "zipf:theta=0.7,footprint=8M", opt);
    const SimResult res = runConfig(point.cfg, point.workload, point.opt);
    EXPECT_GT(res.committedInstructions, 0u);
    // The report label is the full spec text so differently
    // parameterized runs of one generator stay distinguishable.
    EXPECT_EQ(res.workload, "zipf:theta=0.7,footprint=8M");
}

TEST(SpecDrivenRun, ScenariosSweepIsRegistered)
{
    const SweepSpec *spec = findSweep("scenarios");
    ASSERT_NE(spec, nullptr);
    ASSERT_FALSE(spec->axes.empty());
    // Every scenario spec on the workload axis must be constructible.
    WorkloadParams params;
    params.numThreads = 1;
    params.instrPerThread = 0;
    for (const std::string &label : spec->axes.front().labels())
        EXPECT_NO_THROW(makeWorkload(label, params)) << label;
}

TEST(SpecDrivenRun, ScenariosReportMatchesCheckedInReference)
{
    // The same serialization path skybyte_sweep --run uses, diffed
    // against the reference report CI pins (tests/data/). Regenerate
    // with: ./skybyte_sweep --run scenarios -o
    // tests/data/scenarios.reference.json
    const std::string ref_path =
        std::string(__FILE__).substr(
            0, std::string(__FILE__).rfind('/'))
        + "/data/scenarios.reference.json";
    std::ifstream in(ref_path);
    ASSERT_TRUE(in.good()) << ref_path;
    std::string reference((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());

    const SweepSpec *spec = findSweep("scenarios");
    ASSERT_NE(spec, nullptr);
    // Fixed options, not optionsFromEnv(): ambient SKYBYTE_BENCH_*
    // variables must not make the reference comparison fail.
    ExperimentOptions opt;
    opt.instrPerThread = spec->defaultInstrPerThread;
    const SweepExecution exec = runSweepShard(*spec, opt);

    SweepReport report;
    report.sweep = spec->name;
    report.totalPoints = exec.totalPoints;
    for (std::size_t i = 0; i < exec.points.size(); ++i) {
        const LabeledPoint &lp = exec.points[i];
        report.entries.push_back(
            {lp.index,
             sweepEntryJson(lp.index, lp.id(), exec.results[i])});
    }
    EXPECT_EQ(toJson(report), reference)
        << "scenario sweep drifted from tests/data/"
           "scenarios.reference.json — if the change is intentional, "
           "regenerate the reference";
}

TEST(SpecDrivenRun, ThreadsArgOverridesParams)
{
    WorkloadParams params;
    params.numThreads = 2;
    params.instrPerThread = 500;
    auto wl = makeWorkload("uniform:threads=5", params);
    EXPECT_EQ(wl->numThreads(), 5);

    // System must size its thread contexts from the workload, and the
    // run must retire work from every lane.
    SimConfig cfg = makeBenchConfig("Base-CSSD");
    System sys(cfg, "uniform:threads=5", params);
    EXPECT_EQ(sys.workload().numThreads(), 5);
    const SimResult res = sys.run();
    EXPECT_FALSE(res.timedOut);
    EXPECT_GT(res.committedInstructions, 0u);
}

} // namespace
} // namespace skybyte
