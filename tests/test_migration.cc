/**
 * @file
 * Tests for adaptive page migration (§III-C): hot-page promotion flow,
 * PLB capacity, routing changes, functional consistency of the copies,
 * budget-driven demotion with the anti-thrash guard, clean demotions
 * avoiding flash programs, and the TPP sampling variant.
 */

#include <gtest/gtest.h>

#include "core/migration.h"

namespace skybyte {
namespace {

SimConfig
migConfig(MigrationMechanism mech, std::uint64_t host_pages = 8)
{
    SimConfig cfg;
    cfg.policy.promotionEnable = true;
    cfg.policy.migration = mech;
    cfg.policy.hotPageThreshold = 4;
    cfg.flash.channels = 2;
    cfg.flash.chipsPerChannel = 2;
    cfg.flash.diesPerChip = 2;
    cfg.flash.blocksPerPlane = 4;
    cfg.flash.pagesPerBlock = 16;
    cfg.ssdCache.baseCssdPrefetch = false;
    cfg.hostMem.promotedBytesMax = host_pages * kPageBytes;
    return cfg;
}

struct MigFixture
{
    explicit MigFixture(const SimConfig &config)
        : cfg(config), link(eq, cfg.cxl), ssd(cfg, eq, link),
          host(eq, cfg.hostDram), engine(cfg, eq, ssd, host, link)
    {}

    void
    cachePage(std::uint64_t lpn)
    {
        ssd.warmFill(lpn);
    }

    SimConfig cfg;
    EventQueue eq;
    CxlLink link;
    SsdController ssd;
    DramModel host;
    MigrationEngine engine;
};

TEST(Migration, HotCachedPageGetsPromoted)
{
    MigFixture fx(migConfig(MigrationMechanism::SkyByte));
    fx.cachePage(3);
    EXPECT_TRUE(fx.engine.onHotPage(3, 0));
    // While the copy is in flight, reads stay on the SSD DRAM (§III-C).
    EXPECT_EQ(fx.engine.route(3, 0, 0, false), PageHome::Ssd);
    fx.eq.run();
    EXPECT_EQ(fx.engine.stats().promotions, 1u);
    EXPECT_TRUE(fx.engine.isPromoted(3));
    EXPECT_FALSE(fx.ssd.isPageCached(3)); // dropped from SSD DRAM
}

TEST(Migration, UncachedPageRejected)
{
    MigFixture fx(migConfig(MigrationMechanism::SkyByte));
    EXPECT_FALSE(fx.engine.onHotPage(5, 0));
    EXPECT_EQ(fx.engine.stats().rejectedNotCached, 1u);
    EXPECT_EQ(fx.engine.route(5, 0, 0, false), PageHome::Ssd);
}

TEST(Migration, FunctionalCopyPreservesValues)
{
    MigFixture fx(migConfig(MigrationMechanism::SkyByte));
    // Write through the SSD (log + cache) then promote.
    fx.ssd.write(2 * kPageBytes + 6 * kCachelineBytes, 606, 0);
    fx.eq.run();
    fx.cachePage(2);
    ASSERT_TRUE(fx.engine.onHotPage(2, fx.eq.now()));
    fx.eq.run();
    // The host copy must hold the logged value.
    EXPECT_EQ(fx.host.peek(2 * kPageBytes + 6 * kCachelineBytes), 606u);
}

TEST(Migration, PlbCapacityLimitsConcurrentMigrations)
{
    SimConfig cfg = migConfig(MigrationMechanism::SkyByte, 128);
    cfg.hostMem.plbEntries = 2;
    MigFixture fx(cfg);
    for (std::uint64_t lpn = 0; lpn < 3; ++lpn)
        fx.cachePage(lpn);
    EXPECT_TRUE(fx.engine.onHotPage(0, 0));
    EXPECT_TRUE(fx.engine.onHotPage(1, 0));
    EXPECT_FALSE(fx.engine.onHotPage(2, 0)); // PLB full
    EXPECT_EQ(fx.engine.stats().rejectedPlbFull, 1u);
    fx.eq.run();
    EXPECT_TRUE(fx.engine.onHotPage(2, fx.eq.now())); // retry succeeds
}

TEST(Migration, BudgetFullDemotesIdleColdest)
{
    MigFixture fx(migConfig(MigrationMechanism::SkyByte, 2));
    fx.cachePage(0);
    fx.cachePage(1);
    ASSERT_TRUE(fx.engine.onHotPage(0, 0));
    ASSERT_TRUE(fx.engine.onHotPage(1, 0));
    fx.eq.run();
    ASSERT_EQ(fx.engine.promotedPages(), 2u);
    // Both pages are recent: a third promotion must be refused
    // (anti-thrash), not churn.
    fx.cachePage(2);
    EXPECT_FALSE(fx.engine.onHotPage(2, fx.eq.now()));
    EXPECT_EQ(fx.engine.stats().demotions, 0u);
    // After the pages idle past the window, the promotion goes through.
    const Tick later = fx.eq.now() + usToTicks(5'000.0);
    EXPECT_TRUE(fx.engine.onHotPage(2, later));
    EXPECT_EQ(fx.engine.stats().demotions, 1u);
}

TEST(Migration, LruVictimIsExactMinUnderNonMonotonicTouches)
{
    // Cores hand route() their instruction-cursor ticks, which
    // interleave non-monotonically across quanta. The recency list is
    // sorted by lastUse, so the demotion victim must be the region
    // with the smallest lastUse even when it was touched *last* in
    // call order (a move-to-back list would demote the wrong region).
    MigFixture fx(migConfig(MigrationMechanism::SkyByte, 2));
    fx.cachePage(0);
    fx.cachePage(1);
    ASSERT_TRUE(fx.engine.onHotPage(0, 0));
    ASSERT_TRUE(fx.engine.onHotPage(1, 0));
    fx.eq.run();
    ASSERT_EQ(fx.engine.promotedPages(), 2u);
    const Tick t0 = fx.eq.now();
    // Call order: page 1 first with the LATER tick, page 0 second
    // with the EARLIER tick. Exact LRU => page 0 is the victim.
    fx.engine.route(1, 0, t0 + usToTicks(200.0), false);
    fx.engine.route(0, 0, t0 + usToTicks(100.0), false);
    fx.cachePage(2);
    EXPECT_TRUE(fx.engine.onHotPage(
        2, t0 + usToTicks(200.0) + usToTicks(5'000.0)));
    EXPECT_EQ(fx.engine.stats().demotions, 1u);
    EXPECT_FALSE(fx.engine.isPromoted(0));
    EXPECT_TRUE(fx.engine.isPromoted(1));
}

TEST(Migration, CleanDemotionSkipsFlashProgram)
{
    MigFixture fx(migConfig(MigrationMechanism::SkyByte, 1));
    fx.cachePage(0);
    ASSERT_TRUE(fx.engine.onHotPage(0, 0));
    fx.eq.run();
    const std::uint64_t programs_before =
        fx.ssd.ftl().stats().hostPrograms;
    // Page 0 was never written while promoted: demotion is free.
    fx.cachePage(1);
    const Tick later = fx.eq.now() + usToTicks(5'000.0);
    ASSERT_TRUE(fx.engine.onHotPage(1, later));
    fx.eq.run();
    EXPECT_EQ(fx.engine.stats().demotions, 1u);
    EXPECT_EQ(fx.ssd.ftl().stats().hostPrograms, programs_before);
}

TEST(Migration, DirtyDemotionWritesBack)
{
    MigFixture fx(migConfig(MigrationMechanism::SkyByte, 1));
    fx.cachePage(0);
    ASSERT_TRUE(fx.engine.onHotPage(0, 0));
    fx.eq.run();
    // Dirty the promoted page via the host route.
    EXPECT_EQ(fx.engine.route(0, 0, fx.eq.now(), true), PageHome::Host);
    fx.host.poke(0 * kPageBytes, 4242);
    fx.cachePage(1);
    const Tick later = fx.eq.now() + usToTicks(5'000.0);
    ASSERT_TRUE(fx.engine.onHotPage(1, later));
    fx.eq.run();
    EXPECT_EQ(fx.engine.stats().demotions, 1u);
    EXPECT_GT(fx.ssd.ftl().stats().hostPrograms, 0u);
    // The demoted value survived the round trip.
    EXPECT_EQ(fx.ssd.peekLine(0), 4242u);
    EXPECT_EQ(fx.engine.route(0, 0, fx.eq.now(), false), PageHome::Ssd);
}

TEST(Migration, ShootdownHookFires)
{
    MigFixture fx(migConfig(MigrationMechanism::SkyByte));
    int shootdowns = 0;
    fx.engine.setShootdownHook([&](Tick) { shootdowns++; });
    fx.cachePage(4);
    ASSERT_TRUE(fx.engine.onHotPage(4, 0));
    fx.eq.run();
    EXPECT_EQ(shootdowns, 1);
}

TEST(Migration, TppPromotesAfterSampledAccesses)
{
    MigFixture fx(migConfig(MigrationMechanism::Tpp, 16));
    // TPP needs no SSD-cache residency; repeated sampled accesses
    // eventually promote.
    for (int i = 0; i < 2000 && fx.engine.promotedPages() == 0; ++i) {
        fx.engine.onSsdAccess(7, fx.eq.now());
        fx.eq.run();
    }
    EXPECT_GT(fx.engine.stats().promotions, 0u);
    EXPECT_TRUE(fx.engine.isPromoted(7));
}

TEST(Migration, TppIgnoredUnderSkyBytePolicy)
{
    MigFixture fx(migConfig(MigrationMechanism::SkyByte));
    for (int i = 0; i < 2000; ++i)
        fx.engine.onSsdAccess(7, 0);
    EXPECT_EQ(fx.engine.promotedPages(), 0u);
}

TEST(Migration, InflightWritesRoutePerPlbBit)
{
    MigFixture fx(migConfig(MigrationMechanism::SkyByte));
    fx.cachePage(3);
    ASSERT_TRUE(fx.engine.onHotPage(3, 0));
    // Step until the first burst of line copies has landed but the
    // migration has not finished.
    while (fx.engine.plb().stats().lineCopies < 8)
        ASSERT_TRUE(fx.eq.step());
    ASSERT_LT(fx.engine.plb().stats().lineCopies, kLinesPerPage);
    // Line 0 migrated first: a write chases the fresh host copy.
    EXPECT_EQ(fx.engine.route(3, 0, fx.eq.now(), true), PageHome::Host);
    EXPECT_EQ(fx.engine.stats().inflightWriteRedirects, 1u);
    // The last line has not been copied yet: the write stays on the SSD
    // and the later copy of that line will pick it up.
    EXPECT_EQ(fx.engine.route(3, kLinesPerPage - 1, fx.eq.now(), true),
              PageHome::Ssd);
}

TEST(Migration, InflightSsdWriteReachesHostCopy)
{
    MigFixture fx(migConfig(MigrationMechanism::SkyByte));
    fx.cachePage(3);
    ASSERT_TRUE(fx.engine.onHotPage(3, 0));
    while (fx.engine.plb().stats().lineCopies < 8)
        ASSERT_TRUE(fx.eq.step());
    // Route says SSD for the still-unmigrated last line; emulate the
    // write landing there mid-migration.
    const Addr last = 3 * kPageBytes
                      + static_cast<Addr>(kLinesPerPage - 1)
                            * kCachelineBytes;
    ASSERT_EQ(fx.engine.route(3, kLinesPerPage - 1, fx.eq.now(), true),
              PageHome::Ssd);
    fx.ssd.write(last, 9999, fx.eq.now());
    fx.eq.run();
    ASSERT_TRUE(fx.engine.isPromoted(3));
    // The copy of that line happened after the write: value preserved.
    EXPECT_EQ(fx.host.peek(last), 9999u);
}

TEST(Migration, InflightRedirectMarksRegionDirty)
{
    MigFixture fx(migConfig(MigrationMechanism::SkyByte, 1));
    fx.cachePage(0);
    ASSERT_TRUE(fx.engine.onHotPage(0, 0));
    while (fx.engine.plb().stats().lineCopies < 8)
        ASSERT_TRUE(fx.eq.step());
    // Redirected write to an already-migrated line: only the host copy
    // has it, so the region must demote as dirty later.
    ASSERT_EQ(fx.engine.route(0, 0, fx.eq.now(), true), PageHome::Host);
    fx.host.poke(0, 777);
    fx.eq.run();
    ASSERT_TRUE(fx.engine.isPromoted(0));
    const std::uint64_t programs_before =
        fx.ssd.ftl().stats().hostPrograms;
    fx.cachePage(1);
    const Tick later = fx.eq.now() + usToTicks(5'000.0);
    ASSERT_TRUE(fx.engine.onHotPage(1, later));
    fx.eq.run();
    EXPECT_EQ(fx.engine.stats().demotions, 1u);
    EXPECT_GT(fx.ssd.ftl().stats().hostPrograms, programs_before);
    EXPECT_EQ(fx.ssd.peekLine(0), 777u);
}

TEST(Migration, InflightSsdWriteSurvivesLaterDemotion)
{
    // A write landing on the SSD mid-migration reaches the host copy
    // via the line copy, but the SSD drops its own state at migration
    // end — so the region must demote dirty, or the write would be
    // lost when flash serves it again.
    MigFixture fx(migConfig(MigrationMechanism::SkyByte, 1));
    fx.cachePage(0);
    ASSERT_TRUE(fx.engine.onHotPage(0, 0));
    while (fx.engine.plb().stats().lineCopies < 8)
        ASSERT_TRUE(fx.eq.step());
    const Addr last = 0 * kPageBytes
                      + static_cast<Addr>(kLinesPerPage - 1)
                            * kCachelineBytes;
    ASSERT_EQ(fx.engine.route(0, kLinesPerPage - 1, fx.eq.now(), true),
              PageHome::Ssd);
    fx.ssd.write(last, 31337, fx.eq.now());
    fx.eq.run();
    ASSERT_TRUE(fx.engine.isPromoted(0));
    // Displace the region (budget of one page) after it goes idle.
    fx.cachePage(1);
    const Tick later = fx.eq.now() + usToTicks(5'000.0);
    ASSERT_TRUE(fx.engine.onHotPage(1, later));
    fx.eq.run();
    ASSERT_EQ(fx.engine.stats().demotions, 1u);
    ASSERT_FALSE(fx.engine.isPromoted(0));
    // The value written during the migration survived the round trip.
    EXPECT_EQ(fx.ssd.peekLine(last), 31337u);
}

TEST(Migration, HugePageRegionPromotesWhole2MB)
{
    SimConfig cfg = migConfig(MigrationMechanism::SkyByte, 512);
    cfg.hostMem.hugePageBytes = 2 * 1024 * 1024; // §IV default
    MigFixture fx(cfg);
    ASSERT_EQ(fx.engine.regionPages(), 512u);
    fx.cachePage(3); // residency test applies to the hot 4 KB page
    ASSERT_TRUE(fx.engine.onHotPage(3, 0));
    fx.eq.run();
    EXPECT_EQ(fx.engine.stats().promotions, 1u);
    EXPECT_EQ(fx.engine.promotedPages(), 512u);
    EXPECT_TRUE(fx.engine.isPromoted(0));
    EXPECT_TRUE(fx.engine.isPromoted(511));
    EXPECT_FALSE(fx.engine.isPromoted(512));
    // The SSD was told (custom NVMe command, §IV) to drop all chunks.
    EXPECT_EQ(fx.engine.stats().nvmeNotifies, 1u);
    EXPECT_FALSE(fx.ssd.isPageCached(3));
}

TEST(Migration, HugePageFunctionalCopyCoversAllChunks)
{
    SimConfig cfg = migConfig(MigrationMechanism::SkyByte, 8);
    cfg.hostMem.hugePageBytes = 8 * kPageBytes; // small region: fast
    MigFixture fx(cfg);
    ASSERT_EQ(fx.engine.regionPages(), 8u);
    // Scatter values across different chunks of the region.
    fx.ssd.write(0 * kPageBytes + 0 * kCachelineBytes, 100, 0);
    fx.ssd.write(5 * kPageBytes + 9 * kCachelineBytes, 559, 0);
    fx.ssd.write(7 * kPageBytes + 63 * kCachelineBytes, 763, 0);
    fx.eq.run();
    fx.cachePage(5);
    ASSERT_TRUE(fx.engine.onHotPage(5, fx.eq.now()));
    fx.eq.run();
    ASSERT_TRUE(fx.engine.isPromoted(0));
    EXPECT_EQ(fx.host.peek(0 * kPageBytes), 100u);
    EXPECT_EQ(fx.host.peek(5 * kPageBytes + 9 * kCachelineBytes), 559u);
    EXPECT_EQ(fx.host.peek(7 * kPageBytes + 63 * kCachelineBytes), 763u);
}

TEST(Migration, HugePageDemotionWritesBackOnlyDirtyChunks)
{
    SimConfig cfg = migConfig(MigrationMechanism::SkyByte, 8);
    cfg.hostMem.hugePageBytes = 8 * kPageBytes;
    MigFixture fx(cfg);
    fx.cachePage(2);
    ASSERT_TRUE(fx.engine.onHotPage(2, 0));
    fx.eq.run();
    ASSERT_TRUE(fx.engine.isPromoted(0));
    // Dirty exactly one 4 KB page of the promoted region.
    ASSERT_EQ(fx.engine.route(6, 0, fx.eq.now(), true), PageHome::Host);
    fx.host.poke(6 * kPageBytes, 4321);
    const std::uint64_t programs_before =
        fx.ssd.ftl().stats().hostPrograms;
    // Budget is one region: promoting another region forces demotion.
    fx.cachePage(8);
    const Tick later = fx.eq.now() + usToTicks(5'000.0);
    ASSERT_TRUE(fx.engine.onHotPage(8, later));
    fx.eq.run();
    EXPECT_EQ(fx.engine.stats().demotions, 1u);
    // Exactly one page flushed back (clean chunks demote for free).
    EXPECT_EQ(fx.ssd.ftl().stats().hostPrograms, programs_before + 1);
    EXPECT_EQ(fx.ssd.peekLine(6 * kPageBytes), 4321u);
}

TEST(Migration, PinnedRegionNeverPromotesUnderHugePages)
{
    SimConfig cfg = migConfig(MigrationMechanism::SkyByte, 8);
    cfg.hostMem.hugePageBytes = 8 * kPageBytes;
    cfg.hostMem.pinnedDeviceBytes = 8 * kPageBytes; // first region
    MigFixture fx(cfg);
    fx.cachePage(2);
    EXPECT_TRUE(fx.engine.onHotPage(2, 0)); // latched, not migrated
    fx.eq.run();
    EXPECT_EQ(fx.engine.stats().promotions, 0u);
    EXPECT_FALSE(fx.engine.isPromoted(2));
}

TEST(Migration, ActiveInactiveReclaimDemotesColdRegion)
{
    SimConfig cfg = migConfig(MigrationMechanism::SkyByte, 2);
    cfg.hostMem.reclaim = ReclaimPolicy::ActiveInactive;
    MigFixture fx(cfg);
    fx.cachePage(0);
    fx.cachePage(1);
    ASSERT_TRUE(fx.engine.onHotPage(0, 0));
    ASSERT_TRUE(fx.engine.onHotPage(1, 0));
    fx.eq.run();
    ASSERT_EQ(fx.engine.promotedPages(), 2u);
    EXPECT_EQ(fx.engine.reclaimLists().size(), 2u);
    // Keep page 1 hot; page 0 goes cold.
    const Tick later = fx.eq.now() + usToTicks(5'000.0);
    ASSERT_EQ(fx.engine.route(1, 0, later, false), PageHome::Host);
    fx.cachePage(2);
    ASSERT_TRUE(fx.engine.onHotPage(2, later + usToTicks(5'000.0)));
    fx.eq.run();
    EXPECT_EQ(fx.engine.stats().demotions, 1u);
    EXPECT_FALSE(fx.engine.isPromoted(0)); // cold victim
    EXPECT_TRUE(fx.engine.isPromoted(1));
    EXPECT_TRUE(fx.engine.isPromoted(2));
    EXPECT_EQ(fx.engine.reclaimLists().stats().evictions, 1u);
}

TEST(Migration, ReclaimPoliciesAgreeOnObviousVictim)
{
    for (ReclaimPolicy policy :
         {ReclaimPolicy::LruScan, ReclaimPolicy::ActiveInactive}) {
        SimConfig cfg = migConfig(MigrationMechanism::SkyByte, 1);
        cfg.hostMem.reclaim = policy;
        MigFixture fx(cfg);
        fx.cachePage(0);
        ASSERT_TRUE(fx.engine.onHotPage(0, 0));
        fx.eq.run();
        fx.cachePage(1);
        const Tick later = fx.eq.now() + usToTicks(5'000.0);
        ASSERT_TRUE(fx.engine.onHotPage(1, later));
        fx.eq.run();
        EXPECT_TRUE(fx.engine.isPromoted(1));
        EXPECT_FALSE(fx.engine.isPromoted(0));
    }
}

TEST(Migration, TenantShareCapsPromotions)
{
    MigFixture fx(migConfig(MigrationMechanism::SkyByte, 128));
    // Two tenants: device pages [0,4) and [4,..). Tenant 0 may hold
    // one 4 KB region in host DRAM, tenant 1 two.
    fx.engine.setTenantShares({0, 4 * kPageBytes},
                              {kPageBytes, 2 * kPageBytes});
    for (std::uint64_t lpn : {0, 1, 4, 5, 6})
        fx.cachePage(static_cast<std::uint64_t>(lpn));
    ASSERT_TRUE(fx.engine.onHotPage(0, 0));
    fx.eq.run();
    EXPECT_EQ(fx.engine.tenantPromotedBytes(0), kPageBytes);
    // Tenant 0 is at its share: the next promotion is refused even
    // though the global host budget has plenty of room.
    EXPECT_FALSE(fx.engine.onHotPage(1, fx.eq.now()));
    EXPECT_EQ(fx.engine.stats().rejectedTenantShare, 1u);
    EXPECT_FALSE(fx.engine.isPromoted(1));
    // Tenant 1's share is independent of tenant 0's rejection.
    ASSERT_TRUE(fx.engine.onHotPage(4, fx.eq.now()));
    ASSERT_TRUE(fx.engine.onHotPage(5, fx.eq.now()));
    fx.eq.run();
    EXPECT_EQ(fx.engine.tenantPromotedBytes(1), 2 * kPageBytes);
    EXPECT_FALSE(fx.engine.onHotPage(6, fx.eq.now()));
    EXPECT_EQ(fx.engine.stats().rejectedTenantShare, 2u);
}

TEST(Migration, DemotionReleasesTenantShare)
{
    // A one-page host budget forces a demotion on the second
    // promotion; the demoted region's bytes must return to the
    // tenant's share so the cap tracks what is actually resident.
    MigFixture fx(migConfig(MigrationMechanism::SkyByte, 1));
    fx.engine.setTenantShares({0}, {4 * kPageBytes});
    fx.cachePage(0);
    ASSERT_TRUE(fx.engine.onHotPage(0, 0));
    fx.eq.run();
    EXPECT_EQ(fx.engine.tenantPromotedBytes(0), kPageBytes);
    fx.cachePage(1);
    const Tick later = fx.eq.now() + usToTicks(5'000.0);
    ASSERT_TRUE(fx.engine.onHotPage(1, later));
    fx.eq.run();
    EXPECT_EQ(fx.engine.stats().demotions, 1u);
    EXPECT_TRUE(fx.engine.isPromoted(1));
    EXPECT_EQ(fx.engine.tenantPromotedBytes(0), kPageBytes);
    EXPECT_EQ(fx.engine.stats().rejectedTenantShare, 0u);
}

} // namespace
} // namespace skybyte
