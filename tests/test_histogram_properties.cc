/**
 * @file
 * Percentile/CDF correctness properties of the statistics primitives:
 * ceil-rank percentile semantics pinned over exact small-count cases,
 * exclusive CDF boundaries, histogram percentiles checked against
 * exact sorted-sample percentiles across random sample sets (error
 * bounded by the containing bucket's width), and merge() equivalence
 * with combined recording.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace skybyte {
namespace {

/** Exact p-th percentile of @p samples under ceil-rank semantics. */
Tick
exactPercentile(std::vector<Tick> samples, double p)
{
    std::sort(samples.begin(), samples.end());
    const auto n = static_cast<double>(samples.size());
    auto rank = static_cast<std::size_t>(std::ceil(p * n));
    rank = std::max<std::size_t>(rank, 1);
    return samples[rank - 1];
}

/**
 * The log-bucket (8 sub-buckets per octave) containing @p t has width
 * at most t/8 plus one tick of rounding, so the histogram percentile
 * (the bucket's upper bound) can exceed the exact sample by at most
 * that much.
 */
Tick
bucketWidthBound(Tick t)
{
    return t / 8 + 1;
}

TEST(LatencyHistogram, PercentileUsesCeilRankExactSmallCounts)
{
    // 100 spread-out samples: i*1000 for i = 1..100. Every interesting
    // rank maps to a distinct sample, so truncation bugs are visible.
    LatencyHistogram h;
    std::vector<Tick> samples;
    for (Tick i = 1; i <= 100; ++i) {
        samples.push_back(i * 1000);
        h.record(i * 1000);
    }
    // p99 of 100 samples must resolve to rank 99, not 98.
    EXPECT_GE(h.percentileTicks(0.99), 99'000u);
    // 0.29 * 100 = 28.999... in binary floating point; the ceil must
    // still land on rank 29.
    EXPECT_GE(h.percentileTicks(0.29), 29'000u);
    // p100 is the maximum; p just above zero is the minimum (rank
    // clamps to 1, never 0).
    EXPECT_GE(h.percentileTicks(1.0), 100'000u);
    EXPECT_GE(h.percentileTicks(1e-9), 1000u);
    EXPECT_LE(h.percentileTicks(1e-9),
              1000u + bucketWidthBound(1000));
    // Generic ranks stay within the containing bucket's width.
    for (const double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95}) {
        const Tick exact = exactPercentile(samples, p);
        const Tick got = h.percentileTicks(p);
        EXPECT_GE(got, exact) << "p=" << p;
        EXPECT_LE(got, exact + bucketWidthBound(exact)) << "p=" << p;
    }
}

TEST(LatencyHistogram, PercentileSingleSample)
{
    LatencyHistogram h;
    h.record(5000);
    for (const double p : {0.001, 0.5, 0.99, 1.0}) {
        EXPECT_GE(h.percentileTicks(p), 5000u);
        EXPECT_LE(h.percentileTicks(p),
                  5000u + bucketWidthBound(5000));
    }
}

TEST(LatencyHistogram, PercentileMatchesSortedSamplesRandom)
{
    Rng rng(2026);
    for (const int n : {1, 7, 33, 500, 5000}) {
        LatencyHistogram h;
        std::vector<Tick> samples;
        for (int i = 0; i < n; ++i) {
            const Tick t = rng.below(10'000'000) + 1;
            samples.push_back(t);
            h.record(t);
        }
        for (const double p :
             {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
            const Tick exact = exactPercentile(samples, p);
            const Tick got = h.percentileTicks(p);
            EXPECT_GE(got, exact) << "n=" << n << " p=" << p;
            EXPECT_LE(got, exact + bucketWidthBound(exact))
                << "n=" << n << " p=" << p;
        }
    }
}

TEST(LatencyHistogram, LowTickBucketBoundsStrictlyIncrease)
{
    // One sample per tick value 1..16: the CDF points must come out
    // with strictly increasing latencies — before the low-octave
    // upper-bound fix, several sub-8-tick buckets collapsed onto the
    // same bound.
    LatencyHistogram h;
    for (Tick t = 1; t <= 16; ++t)
        h.record(t);
    double prev = 0.0;
    for (const auto &[ns, frac] : h.cdfPoints()) {
        EXPECT_GT(ns, prev);
        prev = ns;
    }
    EXPECT_EQ(h.count(), 16u);
}

TEST(LatencyHistogram, MergeEqualsCombinedRecording)
{
    Rng rng(99);
    LatencyHistogram a, b, combined;
    for (int i = 0; i < 4000; ++i) {
        const Tick t = rng.below(1'000'000) + 1;
        combined.record(t);
        if (i % 3 == 0)
            a.record(t);
        else
            b.record(t);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_DOUBLE_EQ(a.meanTicks(), combined.meanTicks());
    for (const double p : {0.1, 0.5, 0.9, 0.99})
        EXPECT_EQ(a.percentileTicks(p), combined.percentileTicks(p));
    EXPECT_EQ(a.cdfPoints(), combined.cdfPoints());
}

TEST(RatioHistogram, CdfBoundariesExclusive)
{
    RatioHistogram h;
    // Samples exactly on the r = 0.5 bucket boundary belong to the
    // bucket starting at 0.5, so cdfAt(0.5) must not count them.
    for (int i = 0; i < 10; ++i)
        h.record(0.5);
    EXPECT_NEAR(h.cdfAt(0.0), 0.0, 1e-12);
    EXPECT_NEAR(h.cdfAt(0.5), 0.0, 1e-12);
    EXPECT_NEAR(h.cdfAt(0.5 + 1.0 / 64), 1.0, 1e-12);
    EXPECT_NEAR(h.cdfAt(1.0), 1.0, 1e-12);
}

TEST(RatioHistogram, CdfMonotoneAndMergeEqualsCombined)
{
    Rng rng(7);
    RatioHistogram a, b, combined;
    for (int i = 0; i < 2000; ++i) {
        const double r = rng.uniform();
        combined.record(r);
        if (i % 2 == 0)
            a.record(r);
        else
            b.record(r);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
    double prev = -1.0;
    for (int i = 0; i <= 64; ++i) {
        const double r = static_cast<double>(i) / 64;
        const double c = combined.cdfAt(r);
        EXPECT_DOUBLE_EQ(a.cdfAt(r), c);
        EXPECT_GE(c, prev);
        prev = c;
    }
    EXPECT_NEAR(prev, 1.0, 1e-12);
}

} // namespace
} // namespace skybyte
