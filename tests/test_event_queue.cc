/**
 * @file
 * Unit tests for the discrete-event kernel: time ordering, deterministic
 * same-tick FIFO, clamping, bounded runs, the calendar-window-to-heap
 * overflow crossover, and order equivalence against the seed kernel
 * (LegacyEventQueue) under randomized schedules.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/event_queue.h"

namespace skybyte {
namespace {

TEST(EventQueue, StartsAtZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PastSchedulingClampsToNow)
{
    EventQueue eq;
    Tick fired_at = 0;
    eq.schedule(100, [&] {
        eq.schedule(50, [&] { fired_at = eq.now(); }); // in the past
    });
    eq.run();
    EXPECT_EQ(fired_at, 100u);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick fired_at = 0;
    eq.schedule(40, [&] {
        eq.scheduleAfter(15, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 55u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100)
            eq.scheduleAfter(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(count, 100);
    EXPECT_EQ(eq.now(), 99u);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 0; t < 10; ++t)
        eq.schedule(t * 10, [&] { count++; });
    eq.run(45);
    EXPECT_EQ(count, 5); // events at 0,10,20,30,40
    EXPECT_EQ(eq.pending(), 5u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    eq.schedule(99, [] {});
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, BoundedRunAdvancesClockToLimit)
{
    // Events remain past the limit, yet the clock lands exactly on it,
    // so back-to-back bounded runs resume from a consistent time (the
    // seed kernel only advanced the clock when the queue drained).
    EventQueue eq;
    int count = 0;
    eq.schedule(10, [&] { count++; });
    eq.schedule(500, [&] { count++; });
    eq.run(100);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run(400); // nothing fires, clock still advances
    EXPECT_EQ(count, 1);
    EXPECT_EQ(eq.now(), 400u);
    eq.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, FarEventsCrossCalendarWindowIntoHeap)
{
    // Events far beyond the calendar window overflow into the heap and
    // must come back in exact time order as the cursor advances.
    EventQueue eq;
    std::vector<Tick> fired;
    const Tick w = EventQueue::kWindowTicks;
    const std::vector<Tick> whens = {
        3,         w - 1,     w,         w + 1,    2 * w,
        5 * w + 7, 3 * w - 2, 10 * w,    w / 2,    7,
        w + 1,     5 * w + 7, 100 * w,   0,        w,
    };
    for (Tick t : whens)
        eq.schedule(t, [&fired, &eq] { fired.push_back(eq.now()); });
    eq.run();
    std::vector<Tick> expected = whens;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(fired, expected);
    EXPECT_EQ(eq.now(), 100 * w);
}

TEST(EventQueue, SameTickFifoAcrossOverflowCrossover)
{
    // Same-tick events split between the heap (scheduled while the
    // tick was out of the window) and the calendar (scheduled after the
    // cursor advanced) must still fire in schedule order.
    EventQueue eq;
    std::vector<int> order;
    const Tick target = 4 * EventQueue::kWindowTicks + 17;
    eq.schedule(target, [&] { order.push_back(0); }); // via heap
    eq.schedule(target, [&] { order.push_back(1); }); // via heap
    // An intermediate event close to the target pulls the window
    // forward so late schedules at `target` go straight to a bucket.
    eq.schedule(target - 5, [&] {
        eq.schedule(target, [&] { order.push_back(2); });
        eq.scheduleAfter(5, [&] { order.push_back(3); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, ChainsSpanningManyWindows)
{
    // A self-rescheduling chain with a stride larger than the window
    // exercises the empty-window jump path on every step.
    EventQueue eq;
    int count = 0;
    const Tick stride = 3 * EventQueue::kWindowTicks + 1;
    std::function<void()> chain = [&] {
        if (++count < 50)
            eq.scheduleAfter(stride, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(count, 50);
    EXPECT_EQ(eq.now(), 49 * stride);
}

TEST(EventQueue, OversizedCallbacksAndPendingDestruction)
{
    // Callbacks larger than the inline buffer take the heap fallback;
    // captured resources are released both after execution and when
    // pending events are dropped by reset().
    auto token = std::make_shared<int>(7);
    struct Big
    {
        std::shared_ptr<int> t;
        std::uint64_t pad[8];
    };
    {
        EventQueue eq;
        int fired = 0;
        Big big{token, {}};
        eq.schedule(1, [big, &fired] { fired += *big.t; });
        eq.schedule(2, [big] { (void)big; });
        EXPECT_EQ(token.use_count(), 4); // token + local big + 2 events
        eq.run(1);
        EXPECT_EQ(fired, 7);
        EXPECT_EQ(token.use_count(), 3); // executed event destroyed
        eq.reset();
        EXPECT_EQ(token.use_count(), 2); // dropped event destroyed
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueue, MatchesLegacyKernelOnRandomSchedules)
{
    // Drive the calendar kernel and the seed kernel with an identical
    // randomized schedule (including events scheduled from callbacks)
    // and require the exact same execution order.
    auto drive = [](auto &eq) {
        std::vector<std::pair<Tick, int>> log;
        std::uint32_t rng = 0xc0ffee11u;
        auto next = [&rng] {
            rng ^= rng << 13;
            rng ^= rng >> 17;
            rng ^= rng << 5;
            return rng;
        };
        int id = 0;
        for (int i = 0; i < 512; ++i) {
            const Tick when = next() % (3 * EventQueue::kWindowTicks);
            const int my = id++;
            eq.schedule(when, [&, my] {
                log.emplace_back(eq.now(), my);
                if (log.size() < 2000) {
                    const Tick d = next() % 70'000; // some overflow
                    const int child = id++;
                    eq.scheduleAfter(d, [&, child] {
                        log.emplace_back(eq.now(), child);
                    });
                }
            });
        }
        eq.run();
        return log;
    };
    EventQueue calendar;
    LegacyEventQueue legacy;
    const auto a = drive(calendar);
    const auto b = drive(legacy);
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a, b);
}

TEST(EventQueue, WindowAndChunkKnobsNeverChangeExecutionOrder)
{
    // The calendar window and slab chunk size are wall-clock tuning
    // knobs (SimConfig::kernel); any window must produce the exact
    // event order of the default, including heavy overflow traffic
    // when the window is tiny.
    auto drive = [](auto &eq) {
        std::vector<std::pair<Tick, int>> log;
        std::uint32_t rng = 0x5eedf00du;
        auto next = [&rng] {
            rng ^= rng << 13;
            rng ^= rng >> 17;
            rng ^= rng << 5;
            return rng;
        };
        int id = 0;
        for (int i = 0; i < 512; ++i) {
            const Tick when = next() % (3 * EventQueue::kWindowTicks);
            const int my = id++;
            eq.schedule(when, [&, my] {
                log.emplace_back(eq.now(), my);
                if (log.size() < 2000) {
                    const Tick d = next() % 70'000;
                    const int child = id++;
                    eq.scheduleAfter(d, [&, child] {
                        log.emplace_back(eq.now(), child);
                    });
                }
            });
        }
        eq.run();
        return log;
    };
    EventQueue defaults;
    const auto reference = drive(defaults);
    for (const std::size_t window : {64u, 1024u, 65536u}) {
        EventQueue tuned(window, 16);
        EXPECT_EQ(drive(tuned), reference) << "window " << window;
    }
}

TEST(EventQueue, RejectsInvalidKernelKnobs)
{
    EXPECT_THROW(EventQueue(0), std::invalid_argument);
    EXPECT_THROW(EventQueue(32), std::invalid_argument);   // < 64
    EXPECT_THROW(EventQueue(1000), std::invalid_argument); // not 2^n
    EXPECT_THROW(EventQueue(8192, 0), std::invalid_argument);
    EXPECT_NO_THROW(EventQueue(64, 1));
}

} // namespace
} // namespace skybyte
