/**
 * @file
 * Unit tests for the discrete-event kernel: time ordering, deterministic
 * same-tick FIFO, clamping, bounded runs.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.h"

namespace skybyte {
namespace {

TEST(EventQueue, StartsAtZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, PastSchedulingClampsToNow)
{
    EventQueue eq;
    Tick fired_at = 0;
    eq.schedule(100, [&] {
        eq.schedule(50, [&] { fired_at = eq.now(); }); // in the past
    });
    eq.run();
    EXPECT_EQ(fired_at, 100u);
}

TEST(EventQueue, ScheduleAfterIsRelative)
{
    EventQueue eq;
    Tick fired_at = 0;
    eq.schedule(40, [&] {
        eq.scheduleAfter(15, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 55u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100)
            eq.scheduleAfter(1, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(count, 100);
    EXPECT_EQ(eq.now(), 99u);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 0; t < 10; ++t)
        eq.schedule(t * 10, [&] { count++; });
    eq.run(45);
    EXPECT_EQ(count, 5); // events at 0,10,20,30,40
    EXPECT_EQ(eq.pending(), 5u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    eq.schedule(99, [] {});
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.pending(), 0u);
}

} // namespace
} // namespace skybyte
