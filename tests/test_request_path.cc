/**
 * @file
 * Tests for the allocation-free request-path infrastructure:
 *
 *  - FlatMap property test against a std::unordered_map oracle
 *    (random insert/erase/find/operator[] sequences across rehashes,
 *    plus iteration-sum and backward-shift-erase invariants)
 *  - InlineFunction semantics: inline vs heap-fallback targets, move
 *    transfer, null states, and destruction counts
 *  - Slab recycling: construct/destroy pairing and address stability
 *  - Request-path fingerprint pinning: full-system SimResult JSON must
 *    stay bit-identical to the checked-in references for SkyByte-Full,
 *    Base-CSSD, and DRAM-Only across three workload specs. Regenerate
 *    after an intentional behavior change with
 *      SKYBYTE_REGEN_FINGERPRINTS=1 ./test_request_path
 *    and commit the files under tests/data/request_path/.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <unordered_map>

#include "common/flat_map.h"
#include "common/inline_function.h"
#include "common/slab.h"
#include "sim/report.h"
#include "sim/system.h"

namespace skybyte {
namespace {

// --------------------------------------------------------------- FlatMap

TEST(FlatMap, MatchesUnorderedMapOracle)
{
    FlatMap<std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> oracle;
    std::mt19937_64 rng(0xf1a7f1a7ULL);

    for (int step = 0; step < 200'000; ++step) {
        // Small key space so erases collide with probe chains often.
        const std::uint64_t key = rng() % 701;
        switch (rng() % 4) {
          case 0: { // operator[] insert-or-update
            const std::uint64_t v = rng();
            map[key] = v;
            oracle[key] = v;
            break;
          }
          case 1: { // tryEmplace (no overwrite)
            map.tryEmplace(key, step);
            oracle.try_emplace(key, step);
            break;
          }
          case 2: { // erase
            EXPECT_EQ(map.erase(key), oracle.erase(key) > 0);
            break;
          }
          default: { // find
            const std::uint64_t *v = map.find(key);
            auto it = oracle.find(key);
            ASSERT_EQ(v != nullptr, it != oracle.end());
            if (v != nullptr) {
                EXPECT_EQ(*v, it->second);
            }
          }
        }
        ASSERT_EQ(map.size(), oracle.size());
    }

    // Iteration visits every element exactly once.
    std::uint64_t key_sum = 0, val_sum = 0;
    map.forEach([&](std::uint64_t k, std::uint64_t &v) {
        key_sum += k;
        val_sum += v;
    });
    std::uint64_t okey_sum = 0, oval_sum = 0;
    for (const auto &[k, v] : oracle) {
        okey_sum += k;
        oval_sum += v;
    }
    EXPECT_EQ(key_sum, okey_sum);
    EXPECT_EQ(val_sum, oval_sum);
}

TEST(FlatMap, EraseKeepsProbeChainsReachable)
{
    // Adversarial backward-shift case: many keys in one probe cluster,
    // erased from the middle; every survivor must stay findable.
    FlatMap<int> map;
    for (std::uint64_t k = 0; k < 500; ++k)
        map[k] = static_cast<int>(k);
    for (std::uint64_t k = 0; k < 500; k += 3)
        EXPECT_TRUE(map.erase(k));
    for (std::uint64_t k = 0; k < 500; ++k) {
        const int *v = map.find(k);
        if (k % 3 == 0) {
            EXPECT_EQ(v, nullptr) << k;
        } else {
            ASSERT_NE(v, nullptr) << k;
            EXPECT_EQ(*v, static_cast<int>(k));
        }
    }
}

TEST(FlatMap, NonTrivialValuesSurviveRehashAndMove)
{
    FlatMap<std::unique_ptr<std::string>> map;
    for (std::uint64_t k = 0; k < 1000; ++k)
        map[k] = std::make_unique<std::string>(std::to_string(k));
    FlatMap<std::unique_ptr<std::string>> moved = std::move(map);
    EXPECT_EQ(moved.size(), 1000u);
    EXPECT_EQ(map.size(), 0u);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        auto *v = moved.find(k);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ(**v, std::to_string(k));
    }
    moved.clear();
    EXPECT_EQ(moved.size(), 0u);
    EXPECT_EQ(moved.find(1), nullptr);
}

// -------------------------------------------------------- InlineFunction

struct DtorCounter
{
    int *count;
    explicit DtorCounter(int *c) : count(c) {}
    DtorCounter(DtorCounter &&other) noexcept : count(other.count)
    {
        other.count = nullptr;
    }
    ~DtorCounter()
    {
        if (count != nullptr)
            ++*count;
    }
};

TEST(InlineFunction, InlineTargetInvokesAndDestructsOnce)
{
    int destroyed = 0;
    {
        InlineFunction<int(int), 48> fn(
            [d = DtorCounter(&destroyed)](int x) { return x + 1; });
        EXPECT_TRUE(static_cast<bool>(fn));
        EXPECT_EQ(fn(41), 42);
    }
    EXPECT_EQ(destroyed, 1);
}

TEST(InlineFunction, OversizedTargetFallsBackToHeap)
{
    int destroyed = 0;
    {
        // 64-byte payload exceeds the 16-byte buffer: heap cell.
        std::array<std::uint64_t, 8> payload{};
        payload[7] = 7;
        InlineFunction<std::uint64_t(), 16> fn(
            [payload, d = DtorCounter(&destroyed)] {
                return payload[7];
            });
        EXPECT_EQ(fn(), 7u);

        // Moving transfers heap ownership; source becomes null.
        InlineFunction<std::uint64_t(), 16> moved = std::move(fn);
        EXPECT_FALSE(static_cast<bool>(fn));
        EXPECT_EQ(moved(), 7u);
        EXPECT_EQ(destroyed, 0); // pointer handoff, no dtor run
    }
    EXPECT_EQ(destroyed, 1);
}

TEST(InlineFunction, MoveAssignDestroysPreviousTarget)
{
    int first = 0, second = 0;
    InlineFunction<void(), 48> fn([d = DtorCounter(&first)] {});
    fn = InlineFunction<void(), 48>([d = DtorCounter(&second)] {});
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 0);
    fn = nullptr;
    EXPECT_EQ(second, 1);
    EXPECT_FALSE(static_cast<bool>(fn));
}

// ------------------------------------------------------------------ Slab

TEST(Slab, RecyclesStorageAndPairsDestructors)
{
    struct Rec
    {
        int *live;
        explicit Rec(int *l) : live(l) { ++*live; }
        ~Rec() { --*live; }
    };
    int live = 0;
    Slab<Rec> slab(4); // tiny chunks: force multiple refills
    std::vector<Rec *> recs;
    for (int i = 0; i < 64; ++i)
        recs.push_back(slab.alloc(&live));
    EXPECT_EQ(live, 64);
    Rec *recycled = recs.back();
    slab.release(recycled);
    EXPECT_EQ(live, 63);
    // LIFO free list: the very next alloc reuses the released node.
    EXPECT_EQ(slab.alloc(&live), recycled);
    EXPECT_EQ(live, 64);
    for (Rec *r : recs)
        slab.release(r);
    EXPECT_EQ(live, 0);
}

// ------------------------------------------- request-path fingerprints

struct FingerprintCase
{
    const char *variant;
    const char *workload;
};

constexpr FingerprintCase kCases[] = {
    {"SkyByte-Full", "zipf:footprint=4M,instr=60000,threads=2"},
    {"SkyByte-Full", "scan:footprint=4M,instr=60000,threads=2"},
    {"SkyByte-Full", "ptrchase:footprint=2M,instr=40000,threads=2"},
    {"Base-CSSD", "zipf:footprint=4M,instr=60000,threads=2"},
    {"Base-CSSD", "scan:footprint=4M,instr=60000,threads=2"},
    {"Base-CSSD", "ptrchase:footprint=2M,instr=40000,threads=2"},
    {"DRAM-Only", "zipf:footprint=4M,instr=60000,threads=2"},
    {"DRAM-Only", "scan:footprint=4M,instr=60000,threads=2"},
    {"DRAM-Only", "ptrchase:footprint=2M,instr=40000,threads=2"},
};

std::string
fingerprintPath(const FingerprintCase &c)
{
    std::string wl(c.workload);
    const auto colon = wl.find(':');
    if (colon != std::string::npos)
        wl = wl.substr(0, colon);
    return std::string("tests/data/request_path/") + c.variant + "."
           + wl + ".json";
}

/**
 * Tests run from build/ (or deeper); anchor the source tree by a file
 * that always exists so regen can create missing references.
 */
std::string
dataPath(const std::string &rel)
{
    for (const char *prefix : {"", "../", "../../"}) {
        std::ifstream anchor(std::string(prefix)
                             + "tests/data/scenarios.reference.json");
        if (anchor)
            return prefix + rel;
    }
    return rel;
}

TEST(RequestPathFingerprint, SimResultsMatchCheckedInReferences)
{
    const bool regen =
        std::getenv("SKYBYTE_REGEN_FINGERPRINTS") != nullptr;
    for (const FingerprintCase &c : kCases) {
        SimConfig cfg = makeConfig(c.variant);
        const SimResult res =
            runSimulation(cfg, c.workload, WorkloadParams{});
        const std::string json = toJson(res);
        const std::string path = dataPath(fingerprintPath(c));
        if (regen) {
            std::ofstream out(path);
            ASSERT_TRUE(static_cast<bool>(out)) << path;
            out << json;
            continue;
        }
        std::ifstream in(path);
        ASSERT_TRUE(static_cast<bool>(in))
            << "missing reference " << path
            << " (run with SKYBYTE_REGEN_FINGERPRINTS=1 to create)";
        std::ostringstream ref;
        ref << in.rdbuf();
        EXPECT_EQ(json, ref.str())
            << c.variant << " / " << c.workload
            << ": request-path refactor broke bit-identity";
    }
}

} // namespace
} // namespace skybyte
