/**
 * @file
 * Tests for the offline trace analyzer (src/trace/trace_stats.h): exact
 * accounting on a hand-built workload, CDF monotonicity, Table I write
 * ratios for every paper workload, Figure 5-style locality claims, and
 * equivalence between analyzing a generator and its trace-file replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <deque>

#include "trace/trace_file.h"
#include "trace/trace_stats.h"

namespace skybyte {
namespace {

/** Deterministic scripted workload for exact-count assertions. */
class ScriptedWorkload : public Workload
{
  public:
    explicit ScriptedWorkload(std::vector<std::deque<TraceRecord>> script,
                              std::uint64_t footprint)
        : script_(std::move(script)), footprint_(footprint),
          emitted_(script_.size(), 0)
    {}

    std::string name() const override { return "scripted"; }
    std::uint64_t footprintBytes() const override { return footprint_; }
    int numThreads() const override
    {
        return static_cast<int>(script_.size());
    }
    std::uint32_t
    refill(int tid, TraceBatch &batch) override
    {
        auto &queue = script_[static_cast<std::size_t>(tid)];
        std::uint32_t n = 0;
        while (n < TraceBatch::kCapacity && !queue.empty()) {
            const TraceRecord &rec = queue.front();
            batch.records[n++] = rec;
            emitted_[static_cast<std::size_t>(tid)] +=
                rec.computeOps + 1;
            queue.pop_front();
        }
        batch.count = n;
        batch.cursor = 0;
        return n;
    }
    std::uint64_t
    instructionsEmitted(int tid) const override
    {
        return emitted_[static_cast<std::size_t>(tid)];
    }

  private:
    std::vector<std::deque<TraceRecord>> script_;
    std::uint64_t footprint_;
    std::vector<std::uint64_t> emitted_;
};

TraceRecord
rec(Addr vaddr, bool write, std::uint32_t compute = 2)
{
    TraceRecord r;
    r.vaddr = vaddr;
    r.isWrite = write;
    r.computeOps = compute;
    return r;
}

TEST(TraceStats, ExactCountsOnScriptedTrace)
{
    const Addr base = Workload::kDataBase;
    std::vector<std::deque<TraceRecord>> script(1);
    // Page 0: two lines read, one written. Page 1: one line written.
    script[0].push_back(rec(base + 0, false));
    script[0].push_back(rec(base + 64, false));
    script[0].push_back(rec(base + 64, true));
    script[0].push_back(rec(base + kPageBytes, true));
    // A private (non-device) access must not count device pages.
    script[0].push_back(rec(Workload::kPrivateBase, false));
    ScriptedWorkload wl(std::move(script), 2 * kPageBytes);

    const TraceSummary s = summarizeWorkload(wl);
    EXPECT_EQ(s.records, 5u);
    EXPECT_EQ(s.instructions, 5u * 3u);
    EXPECT_EQ(s.memReads, 3u);
    EXPECT_EQ(s.memWrites, 2u);
    EXPECT_EQ(s.deviceAccesses, 4u);
    EXPECT_EQ(s.uniquePages, 2u);
    EXPECT_DOUBLE_EQ(s.writeRatio(), 2.0 / 5.0);
    // Page 0 touched 2/64 lines, page 1 touched 1/64.
    EXPECT_DOUBLE_EQ(s.meanLinesTouched, (2.0 + 1.0) / (2 * 64.0));
    EXPECT_DOUBLE_EQ(s.meanLinesWritten, (1.0 + 1.0) / (2 * 64.0));
    // Both pages touch <= 10% of lines: the first CDF bucket is 1.
    EXPECT_DOUBLE_EQ(s.touchedCdf[0], 1.0);
    EXPECT_DOUBLE_EQ(s.touchedCdf[9], 1.0);
}

TEST(TraceStats, CdfIsMonotoneAndEndsAtOne)
{
    WorkloadParams params;
    params.instrPerThread = 30'000;
    params.numThreads = 4;
    for (const std::string &name : paperWorkloadNames()) {
        auto wl = makeWorkload(name, params);
        const TraceSummary s = summarizeWorkload(*wl);
        ASSERT_GT(s.uniquePages, 0u) << name;
        for (std::size_t i = 1; i < s.touchedCdf.size(); ++i) {
            EXPECT_GE(s.touchedCdf[i], s.touchedCdf[i - 1]) << name;
            EXPECT_GE(s.writtenCdf[i], s.writtenCdf[i - 1]) << name;
        }
        EXPECT_DOUBLE_EQ(s.touchedCdf.back(), 1.0) << name;
        EXPECT_DOUBLE_EQ(s.writtenCdf.back(), 1.0) << name;
    }
}

TEST(TraceStats, WriteRatiosTrackTableI)
{
    WorkloadParams params;
    params.instrPerThread = 60'000;
    params.numThreads = 4;
    for (const std::string &name : paperWorkloadNames()) {
        auto wl = makeWorkload(name, params);
        const TraceSummary s = summarizeWorkload(*wl);
        const double paper = workloadInfo(name).paperWriteRatio;
        EXPECT_NEAR(s.writeRatio(), paper, 0.08)
            << name << " write ratio drifted from Table I";
    }
}

TEST(TraceStats, WrittenNeverExceedsTouched)
{
    WorkloadParams params;
    params.instrPerThread = 30'000;
    for (const std::string &name : paperWorkloadNames()) {
        auto wl = makeWorkload(name, params);
        const TraceSummary s = summarizeWorkload(*wl);
        EXPECT_LE(s.meanLinesWritten, s.meanLinesTouched) << name;
        for (std::size_t i = 0; i < s.touchedCdf.size(); ++i) {
            // More pages sit in the low-coverage buckets for writes.
            EXPECT_GE(s.writtenCdf[i], s.touchedCdf[i]) << name;
        }
    }
}

TEST(TraceStats, HotShareIsAtLeastProportional)
{
    WorkloadParams params;
    params.instrPerThread = 30'000;
    for (const std::string &name : paperWorkloadNames()) {
        auto wl = makeWorkload(name, params);
        const TraceSummary s = summarizeWorkload(*wl);
        // The hottest 10% of pages always carry >= 10% of accesses;
        // skewed workloads carry much more.
        EXPECT_GE(s.hotTop10PctShare, 0.099) << name;
        EXPECT_LE(s.hotTop10PctShare, 1.0) << name;
    }
}

TEST(TraceStats, MaxRecordsBoundsTheScan)
{
    WorkloadParams params;
    params.instrPerThread = 100'000;
    auto wl = makeWorkload("ycsb", params);
    const TraceSummary s = summarizeWorkload(*wl, 1000);
    EXPECT_EQ(s.records, 1000u);
}

TEST(TraceStats, TraceFileReplayMatchesGenerator)
{
    WorkloadParams params;
    params.instrPerThread = 20'000;
    params.numThreads = 2;
    auto original = makeWorkload("radix", params);
    const std::string path =
        ::testing::TempDir() + "/trace_stats_roundtrip.skytrc";
    writeTraceFile(path, *original);

    auto fresh = makeWorkload("radix", params);
    const TraceSummary from_gen = summarizeWorkload(*fresh);
    TraceFileWorkload replay(path);
    const TraceSummary from_file = summarizeWorkload(replay);
    std::remove(path.c_str());

    EXPECT_EQ(from_gen.records, from_file.records);
    EXPECT_EQ(from_gen.memWrites, from_file.memWrites);
    EXPECT_EQ(from_gen.uniquePages, from_file.uniquePages);
    EXPECT_DOUBLE_EQ(from_gen.meanLinesTouched,
                     from_file.meanLinesTouched);
}

TEST(TraceStats, FormatSummaryMentionsKeyFigures)
{
    WorkloadParams params;
    params.instrPerThread = 10'000;
    auto wl = makeWorkload("bc", params);
    const TraceSummary s = summarizeWorkload(*wl);
    const std::string text = formatSummary(s, "bc");
    EXPECT_NE(text.find("trace bc"), std::string::npos);
    EXPECT_NE(text.find("records"), std::string::npos);
    EXPECT_NE(text.find("touched-lines CDF"), std::string::npos);
    EXPECT_NE(text.find("written-lines CDF"), std::string::npos);
}

TEST(TraceStats, EmptyWorkloadYieldsZeroes)
{
    std::vector<std::deque<TraceRecord>> script(2);
    ScriptedWorkload wl(std::move(script), kPageBytes);
    const TraceSummary s = summarizeWorkload(wl);
    EXPECT_EQ(s.records, 0u);
    EXPECT_EQ(s.uniquePages, 0u);
    EXPECT_DOUBLE_EQ(s.writeRatio(), 0.0);
    EXPECT_DOUBLE_EQ(s.hotTop10PctShare, 0.0);
}

} // namespace
} // namespace skybyte
