/**
 * @file
 * Tests for the CXL-aware scheduler (§III-A): RR / Random / CFS policies,
 * yield re-enqueueing, idle-core wakeup, and finish bookkeeping.
 *
 * pickNext() enqueues the yielder and pops one thread, so a depth >1 run
 * queue is built via start() with fewer cores than threads.
 */

#include <gtest/gtest.h>

#include "core/os.h"
#include "cpu/core.h"
#include "mem/dram.h"
#include "trace/workload.h"

namespace skybyte {
namespace {

struct SchedFixture
{
    explicit SchedFixture(SchedPolicy policy, std::uint64_t seed = 1,
                          int num_threads = 6)
        : dram(eq, HostDramConfig{}), uncore(cpu_cfg, eq, dram),
          sched(policy, seed)
    {
        WorkloadParams p;
        p.numThreads = num_threads;
        p.instrPerThread = 1000;
        p.footprintBytes = 1024 * 1024;
        workload = makeWorkload("uniform", p);
        for (int i = 0; i < num_threads; ++i)
            threads.push_back(
                std::make_unique<ThreadContext>(i, workload.get()));
        core = std::make_unique<Core>(0, cpu_cfg, policy_cfg, eq, uncore);
        core->setScheduler(&sched);
        sched.setCores({core.get()});
        for (auto &t : threads)
            sched.addThread(t.get());
    }

    EventQueue eq;
    CpuConfig cpu_cfg;
    PolicyConfig policy_cfg;
    DramModel dram;
    Uncore uncore;
    CxlAwareScheduler sched;
    std::unique_ptr<Workload> workload;
    std::vector<std::unique_ptr<ThreadContext>> threads;
    std::unique_ptr<Core> core;
};

TEST(Scheduler, StartDispatchesAndQueuesRest)
{
    SchedFixture fx(SchedPolicy::RoundRobin);
    fx.sched.start(0);
    // One core took t0; the other five queued.
    EXPECT_EQ(fx.core->currentThread(), fx.threads[0].get());
    EXPECT_EQ(fx.sched.runQueueDepth(), 5u);
}

TEST(Scheduler, RoundRobinIsFifo)
{
    SchedFixture fx(SchedPolicy::RoundRobin);
    fx.sched.start(0); // queue: t1..t5
    ThreadContext *a = fx.sched.pickNext(0, fx.threads[0].get(), 0);
    EXPECT_EQ(a, fx.threads[1].get()); // FIFO head
    ThreadContext *b = fx.sched.pickNext(0, a, 0);
    EXPECT_EQ(b, fx.threads[2].get());
    // Yielded threads go to the back; continue cycling until t0
    // resurfaces in FIFO order.
    ThreadContext *c = fx.sched.pickNext(0, b, 0);
    EXPECT_EQ(c, fx.threads[3].get());
    ThreadContext *d = fx.sched.pickNext(0, c, 0);
    EXPECT_EQ(d, fx.threads[4].get());
    ThreadContext *e = fx.sched.pickNext(0, d, 0);
    EXPECT_EQ(e, fx.threads[5].get());
    ThreadContext *f = fx.sched.pickNext(0, e, 0);
    EXPECT_EQ(f, fx.threads[0].get());
}

TEST(Scheduler, CfsPicksSmallestVruntime)
{
    SchedFixture fx(SchedPolicy::Cfs);
    fx.sched.start(0); // queue: t1..t5
    fx.threads[0]->addVruntime(600);
    fx.threads[1]->addVruntime(500);
    fx.threads[2]->addVruntime(50);
    fx.threads[3]->addVruntime(700);
    fx.threads[4]->addVruntime(5);
    fx.threads[5]->addVruntime(900);
    ThreadContext *got = fx.sched.pickNext(0, fx.threads[0].get(), 0);
    EXPECT_EQ(got, fx.threads[4].get()); // vruntime 5
    got->addVruntime(600);               // it "ran" for a while
    got = fx.sched.pickNext(0, got, 0);
    EXPECT_EQ(got, fx.threads[2].get()); // vruntime 50
}

TEST(Scheduler, CfsMayRepickTheYieldingThread)
{
    // The paper notes CFS can re-select the thread that just yielded
    // when it still has the shortest received execution time.
    SchedFixture fx(SchedPolicy::Cfs);
    fx.sched.start(0);
    for (int i = 1; i <= 5; ++i)
        fx.threads[static_cast<std::size_t>(i)]->addVruntime(1000);
    ThreadContext *got = fx.sched.pickNext(0, fx.threads[0].get(), 0);
    EXPECT_EQ(got, fx.threads[0].get());
}

TEST(Scheduler, RandomIsSeedDeterministic)
{
    SchedFixture a(SchedPolicy::Random, 42);
    SchedFixture b(SchedPolicy::Random, 42);
    a.sched.start(0);
    b.sched.start(0);
    ThreadContext *ta = a.threads[0].get();
    ThreadContext *tb = b.threads[0].get();
    for (int i = 0; i < 40; ++i) {
        ta = a.sched.pickNext(0, ta, 0);
        tb = b.sched.pickNext(0, tb, 0);
        ASSERT_NE(ta, nullptr);
        EXPECT_EQ(ta->threadId(), tb->threadId());
    }
}

TEST(Scheduler, RandomCoversTheQueue)
{
    SchedFixture fx(SchedPolicy::Random, 7);
    fx.sched.start(0);
    std::set<int> seen;
    ThreadContext *t = fx.threads[0].get();
    for (int i = 0; i < 100; ++i) {
        t = fx.sched.pickNext(0, t, 0);
        seen.insert(t->threadId());
    }
    EXPECT_EQ(seen.size(), 6u);
}

TEST(Scheduler, FinishedThreadIsNotRequeued)
{
    SchedFixture fx(SchedPolicy::RoundRobin);
    fx.sched.start(0);
    fx.threads[0]->markFinished();
    fx.sched.pickNext(0, fx.threads[0].get(), 0);
    EXPECT_EQ(fx.sched.runQueueDepth(), 4u); // popped one, added none
}

TEST(Scheduler, EmptyQueueReturnsNull)
{
    SchedFixture fx(SchedPolicy::Cfs, 1, 1);
    fx.sched.start(0); // single thread went straight to the core
    EXPECT_EQ(fx.sched.pickNext(0, nullptr, 0), nullptr);
}

TEST(Scheduler, FinishBookkeeping)
{
    SchedFixture fx(SchedPolicy::Cfs);
    EXPECT_FALSE(fx.sched.allFinished());
    for (std::size_t i = 0; i < fx.threads.size(); ++i)
        fx.sched.threadFinished(fx.threads[i].get(),
                                100 * (static_cast<Tick>(i) + 1));
    EXPECT_TRUE(fx.sched.allFinished());
    EXPECT_EQ(fx.sched.lastFinishTime(), 600u);
}

TEST(Scheduler, WakesIdleCoresWhenWorkAppears)
{
    SchedFixture fx(SchedPolicy::RoundRobin, 1, 3);
    // Core idle, queue empty.
    EXPECT_TRUE(fx.core->idle());
    fx.sched.start(0);
    // start() assigned t0 to the core.
    EXPECT_FALSE(fx.core->idle());
}

} // namespace
} // namespace skybyte
