/**
 * @file
 * Tests for the thread-pooled sweep runner: positional result
 * alignment, and bit-identical results regardless of worker count —
 * every run is seeded solely by its own SweepPoint, so parallel and
 * serial execution must agree exactly.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/experiment.h"

namespace skybyte {
namespace {

/** The deterministic fields two identical runs must agree on. */
void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.variant, b.variant);
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.committedInstructions, b.committedInstructions);
    EXPECT_EQ(a.hostReads, b.hostReads);
    EXPECT_EQ(a.hostWrites, b.hostWrites);
    EXPECT_EQ(a.ssdReadHits, b.ssdReadHits);
    EXPECT_EQ(a.ssdReadMisses, b.ssdReadMisses);
    EXPECT_EQ(a.ssdWrites, b.ssdWrites);
    EXPECT_EQ(a.flashHostPrograms, b.flashHostPrograms);
    EXPECT_EQ(a.flashGcPrograms, b.flashGcPrograms);
    EXPECT_EQ(a.compactions, b.compactions);
    EXPECT_EQ(a.logAppends, b.logAppends);
    EXPECT_EQ(a.logIndexBytesPeak, b.logIndexBytesPeak);
    EXPECT_EQ(a.promotions, b.promotions);
    EXPECT_EQ(a.demotions, b.demotions);
    EXPECT_EQ(a.cxlBytes, b.cxlBytes);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.contextSwitches, b.contextSwitches);
}

std::vector<SweepPoint>
smallSweep()
{
    ExperimentOptions opt;
    opt.instrPerThread = 4'000;
    std::vector<SweepPoint> points;
    for (const char *v : {"Base-CSSD", "SkyByte-Full"}) {
        for (const char *w : {"ycsb", "srad"}) {
            points.push_back(makeSweepPoint(v, w, opt));
        }
    }
    // A custom-seeded point: the seed must travel with the point.
    ExperimentOptions seeded = opt;
    seeded.seed = 1234;
    points.push_back(makeSweepPoint("SkyByte-WP", "bc", seeded));
    return points;
}

TEST(SweepRunner, ResultsAlignWithPoints)
{
    const std::vector<SweepPoint> points = smallSweep();
    const std::vector<SimResult> res = runSweep(points, 2);
    ASSERT_EQ(res.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(res[i].workload, points[i].workload);
        EXPECT_EQ(res[i].variant, points[i].cfg.name);
        EXPECT_GT(res[i].committedInstructions, 0u);
    }
}

TEST(SweepRunner, ParallelMatchesSerialExactly)
{
    const std::vector<SweepPoint> points = smallSweep();
    const std::vector<SimResult> serial = runSweep(points, 1);
    const std::vector<SimResult> parallel = runSweep(points, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE(points[i].cfg.name + "/" + points[i].workload);
        expectSameResult(serial[i], parallel[i]);
    }
}

TEST(SweepRunner, RepeatedRunsAreDeterministic)
{
    const std::vector<SweepPoint> points = smallSweep();
    const std::vector<SimResult> first = runSweep(points, 3);
    const std::vector<SimResult> second = runSweep(points, 3);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        SCOPED_TRACE(points[i].cfg.name + "/" + points[i].workload);
        expectSameResult(first[i], second[i]);
    }
}

TEST(SweepRunner, EmptyAndThreadCountResolution)
{
    EXPECT_TRUE(runSweep({}, 4).empty());
    EXPECT_EQ(sweepThreads(3, 10), 3);
    EXPECT_EQ(sweepThreads(8, 2), 2);  // never more workers than points
    EXPECT_GE(sweepThreads(0, 10), 1); // env/hardware fallback
}

} // namespace
} // namespace skybyte
