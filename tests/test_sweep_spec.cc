/**
 * @file
 * Tests for the declarative sweep API: the global registry holds every
 * figure/table/ablation sweep, the cross-product expansion applies
 * axes in order, and the shard selector partitions any sweep into
 * disjoint, complete subsets for adversarial shard counts.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "sim/sweep.h"

namespace skybyte {
namespace {

TEST(SweepRegistry, EnumeratesEveryPaperSweep)
{
    const std::vector<const SweepSpec *> all = registeredSweeps();
    std::set<std::string> names;
    for (const SweepSpec *spec : all) {
        names.insert(spec->name);
        EXPECT_FALSE(spec->title.empty()) << spec->name;
        EXPECT_GT(spec->pointCount(), 0u) << spec->name;
    }
    // Every multi-run bench binary's grid must be registered.
    for (const char *required :
         {"fig02", "fig03", "fig04", "fig05", "fig06", "fig09",
          "fig10", "fig14", "fig15", "fig16", "fig17", "fig18",
          "fig19", "fig20", "fig21", "fig22", "fig23", "table1",
          "table3", "abl_dram_model", "abl_gc_wear", "abl_hugepage",
          "abl_mshr_free", "abl_promotion", "abl_reclaim", "smoke"}) {
        EXPECT_TRUE(names.count(required)) << required;
    }
    EXPECT_EQ(findSweep("no-such-sweep"), nullptr);
}

TEST(SweepRegistry, RegistersUserSweepsAndRejectsDuplicates)
{
    SweepSpec spec;
    spec.name = "test_user_sweep";
    spec.title = "user-defined";
    spec.axes.push_back(workloadAxis({"ycsb"}));
    registerSweep(spec);
    ASSERT_NE(findSweep("test_user_sweep"), nullptr);
    EXPECT_THROW(registerSweep(spec), std::invalid_argument);

    SweepSpec empty;
    empty.name = "test_empty_sweep";
    EXPECT_THROW(registerSweep(empty), std::invalid_argument);
}

TEST(SweepSpec, ExpandsTheFullCrossProductInOrder)
{
    const SweepSpec *spec = findSweep("fig09");
    ASSERT_NE(spec, nullptr);
    ASSERT_EQ(spec->axes.size(), 2u);
    const std::size_t nw = spec->axes[0].values.size();
    const std::size_t nt = spec->axes[1].values.size();
    EXPECT_EQ(spec->pointCount(), nw * nt);

    ExperimentOptions opt;
    opt.instrPerThread = 1'000;
    const std::vector<LabeledPoint> points = spec->expand(opt);
    ASSERT_EQ(points.size(), nw * nt);
    for (std::size_t i = 0; i < points.size(); ++i) {
        const LabeledPoint &lp = points[i];
        EXPECT_EQ(lp.index, i);
        ASSERT_EQ(lp.labels.size(), 2u);
        // Row-major: first axis (workload) varies slowest.
        EXPECT_EQ(lp.labels[0], spec->axes[0].values[i / nt].label);
        EXPECT_EQ(lp.labels[1], spec->axes[1].values[i % nt].label);
        EXPECT_EQ(lp.row(), lp.labels[0]);
        EXPECT_EQ(lp.col(), lp.labels[1]);
        EXPECT_EQ(lp.id(), lp.labels[0] + "/" + lp.labels[1]);
        // The axes actually mutated the point.
        EXPECT_EQ(lp.point.workload, lp.labels[0]);
        EXPECT_EQ(lp.point.cfg.policy.csThreshold,
                  usToTicks(std::stod(lp.labels[1])));
        EXPECT_EQ(lp.point.opt.instrPerThread, 1'000u);
    }
}

TEST(SweepSpec, AxesApplyInDeclarationOrder)
{
    // fig22's config axis rebuilds the variant config; the nand axis
    // then overwrites the flash timing. If apply order ever flipped,
    // the timing would be reset to the variant default (ULL).
    const SweepSpec *spec = findSweep("fig22");
    ASSERT_NE(spec, nullptr);
    ExperimentOptions opt;
    const std::vector<LabeledPoint> points = spec->expand(opt);
    bool saw_mlc_full = false;
    for (const LabeledPoint &lp : points) {
        if (lp.labels[1] == "Full-24" && lp.labels[2] == "MLC") {
            saw_mlc_full = true;
            EXPECT_EQ(lp.point.cfg.name, "SkyByte-Full");
            EXPECT_EQ(lp.point.opt.threadsOverride, 24);
            EXPECT_EQ(lp.point.cfg.flash.timing.readLatency,
                      nandTiming(NandType::MLC).readLatency);
            EXPECT_EQ(lp.col(), "Full-24/MLC");
        }
    }
    EXPECT_TRUE(saw_mlc_full);
}

TEST(Shard, ParsesAndRejects)
{
    EXPECT_EQ(parseShard("0/1").index, 0u);
    EXPECT_EQ(parseShard("0/1").count, 1u);
    EXPECT_EQ(parseShard("2/3").index, 2u);
    EXPECT_EQ(parseShard("2/3").count, 3u);
    for (const char *bad : {"", "1", "3/3", "4/3", "x/2", "1/x",
                            "1/0", "1/2junk", "/2", "1/", "1/-1",
                            "-1/2", "+1/2", "4294967296/4294967297"}) {
        EXPECT_THROW(parseShard(bad), std::invalid_argument) << bad;
    }
}

TEST(Shard, PartitionsAreDisjointAndCompleteForAdversarialCounts)
{
    const SweepSpec *spec = findSweep("fig09");
    ASSERT_NE(spec, nullptr);
    const std::size_t total = spec->pointCount();
    // More shards than points, prime counts, exact fit, one shard.
    for (const std::uint32_t n :
         {1u, 2u, 3u, 5u, 7u, static_cast<std::uint32_t>(total),
          29u, 1000u}) {
        std::set<std::size_t> seen;
        for (std::uint32_t i = 0; i < n; ++i) {
            const ShardSpec shard{i, n};
            for (std::size_t idx = 0; idx < total; ++idx) {
                if (!shardOwns(shard, idx))
                    continue;
                EXPECT_TRUE(seen.insert(idx).second)
                    << "index " << idx << " owned twice at N=" << n;
            }
        }
        EXPECT_EQ(seen.size(), total) << "incomplete at N=" << n;
    }
}

TEST(Shard, ShardedRunsMatchTheUnshardedRunExactly)
{
    const SweepSpec *spec = findSweep("smoke");
    ASSERT_NE(spec, nullptr);
    ExperimentOptions opt;
    opt.instrPerThread = 2'000;
    const SweepExecution full = runSweepShard(*spec, opt, {0, 1}, 2);
    ASSERT_EQ(full.points.size(), spec->pointCount());
    std::size_t covered = 0;
    for (std::uint32_t i = 0; i < 2; ++i) {
        const SweepExecution shard =
            runSweepShard(*spec, opt, {i, 2}, 2);
        EXPECT_EQ(shard.totalPoints, full.points.size());
        for (std::size_t k = 0; k < shard.points.size(); ++k) {
            const std::size_t idx = shard.points[k].index;
            ASSERT_LT(idx, full.results.size());
            EXPECT_EQ(shard.results[k].execTime,
                      full.results[idx].execTime);
            EXPECT_EQ(shard.results[k].committedInstructions,
                      full.results[idx].committedInstructions);
            EXPECT_EQ(shard.results[k].flashHostPrograms,
                      full.results[idx].flashHostPrograms);
            covered++;
        }
    }
    EXPECT_EQ(covered, full.points.size());
}

} // namespace
} // namespace skybyte
