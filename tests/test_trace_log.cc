/**
 * @file
 * Tests for the STRC trace-log pipeline (trace/trace_log/): codec
 * units, writer/reader round trips across block-boundary record
 * counts, O(1) seek vs linear scan, corrupt/truncated-file error
 * paths, the bounded-memory guarantee of the streaming replay
 * workload, and the headline equivalence — a System replaying an STRC
 * capture through `tracelog:path=` produces a byte-identical
 * SimResult fingerprint to the same System replaying the flat capture
 * of the same workload.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <numeric>
#include <vector>

#include "common/fs.h"
#include "sim/experiment.h"
#include "sim/report.h"
#include "sim/system.h"
#include "trace/trace_file.h"
#include "trace/trace_log/codec.h"
#include "trace/trace_log/trace_log.h"
#include "trace/trace_log/trace_log_workload.h"
#include "trace/workload.h"

namespace skybyte {
namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

std::vector<std::uint8_t>
fileBytes(const std::string &path)
{
    const std::string text = readFileText(path);
    return {text.begin(), text.end()};
}

// --- Codec units ------------------------------------------------------

TEST(TraceLogCodec, VarintRoundTrip)
{
    const std::uint64_t values[] = {
        0,   1,    127,  128,        129,
        300, 1u << 20, ~0ULL >> 1, ~0ULL - 1, ~0ULL,
    };
    std::vector<std::uint8_t> buf;
    for (const std::uint64_t v : values)
        putVarint(buf, v);
    std::size_t pos = 0;
    for (const std::uint64_t v : values)
        EXPECT_EQ(getVarint(buf.data(), buf.size(), pos), v);
    EXPECT_EQ(pos, buf.size());
}

TEST(TraceLogCodec, VarintRejectsTruncationAndOverflow)
{
    std::vector<std::uint8_t> buf;
    putVarint(buf, ~0ULL);
    ASSERT_EQ(buf.size(), 10u);
    for (std::size_t cut = 0; cut < buf.size(); ++cut) {
        std::size_t pos = 0;
        EXPECT_THROW(getVarint(buf.data(), cut, pos), TraceLogError);
    }
    // 10th byte with any bit above the top u64 bit set must throw
    // rather than silently wrap.
    std::vector<std::uint8_t> wide(9, 0x80);
    wide.push_back(0x02);
    std::size_t pos = 0;
    EXPECT_THROW(getVarint(wide.data(), wide.size(), pos),
                 TraceLogError);
}

TEST(TraceLogCodec, ZigzagRoundTrip)
{
    for (const std::int64_t v :
         {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1},
          std::int64_t{64}, std::int64_t{-64},
          std::numeric_limits<std::int64_t>::max(),
          std::numeric_limits<std::int64_t>::min()}) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v) << v;
    }
    // Small magnitudes must encode small (that is the point).
    EXPECT_LE(zigzagEncode(-2), 4u);
}

TEST(TraceLogCodec, Crc32KnownVector)
{
    // The standard IEEE check value.
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
    EXPECT_EQ(crc32("", 0), 0u);
}

TEST(TraceLogCodec, SlzRoundTripCompressible)
{
    // Long repeated runs: must round-trip AND actually shrink.
    std::vector<std::uint8_t> data;
    for (int i = 0; i < 500; ++i)
        data.push_back(static_cast<std::uint8_t>(i % 7));
    const auto packed = slzCompress(data.data(), data.size());
    EXPECT_LT(packed.size(), data.size());
    const auto out =
        slzDecompress(packed.data(), packed.size(), data.size());
    EXPECT_EQ(out, data);
}

TEST(TraceLogCodec, SlzRoundTripIncompressibleAndEdges)
{
    // Pseudo-random bytes (deterministic LCG), plus tiny inputs.
    std::vector<std::uint8_t> data;
    std::uint32_t x = 123456789;
    for (int i = 0; i < 1000; ++i) {
        x = x * 1664525u + 1013904223u;
        data.push_back(static_cast<std::uint8_t>(x >> 24));
    }
    for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                                std::size_t{3}, std::size_t{4},
                                std::size_t{17}, data.size()}) {
        const auto packed = slzCompress(data.data(), n);
        const auto out = slzDecompress(packed.data(), packed.size(), n);
        EXPECT_EQ(out, std::vector<std::uint8_t>(data.begin(),
                                                 data.begin() + n));
    }
}

TEST(TraceLogCodec, SlzDecompressRejectsCorruptStreams)
{
    std::vector<std::uint8_t> data(300, 0xab);
    data[7] = 1;
    const auto packed = slzCompress(data.data(), data.size());
    // Truncations at every prefix length must throw, never crash.
    for (std::size_t cut = 0; cut < packed.size(); ++cut) {
        EXPECT_THROW(slzDecompress(packed.data(), cut, data.size()),
                     TraceLogError);
    }
    // Wrong declared size in both directions.
    EXPECT_THROW(
        slzDecompress(packed.data(), packed.size(), data.size() - 1),
        TraceLogError);
    EXPECT_THROW(
        slzDecompress(packed.data(), packed.size(), data.size() + 1),
        TraceLogError);
    // A match offset of zero / before the output start must throw.
    const std::vector<std::uint8_t> bad_offset = {
        0x10, 0xaa, 0x00, 0x00, 0x00};
    EXPECT_THROW(
        slzDecompress(bad_offset.data(), bad_offset.size(), 100),
        TraceLogError);
    const std::vector<std::uint8_t> far_offset = {
        0x10, 0xaa, 0x05, 0x00, 0x00};
    EXPECT_THROW(
        slzDecompress(far_offset.data(), far_offset.size(), 100),
        TraceLogError);
}

// --- Writer / reader round trips --------------------------------------

/** Deterministic synthetic records mixing locality and randomness so
 *  both codec paths (compressed and raw-stored) get exercised. */
std::vector<TraceRecord>
makeRecords(std::size_t n, std::uint64_t seed)
{
    std::vector<TraceRecord> records(n);
    std::uint64_t x = seed * 0x9e3779b97f4a7c15ULL + 1;
    std::uint64_t addr = Workload::kDataBase;
    for (std::size_t i = 0; i < n; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if (x % 4 == 0)
            addr = Workload::kDataBase + (x % (1 << 24));
        else
            addr += 64;
        records[i] = {static_cast<std::uint32_t>(x % 37),
                      x % 5 == 0, addr};
    }
    return records;
}

void
expectSameRecords(const std::vector<TraceRecord> &a,
                  const std::vector<TraceRecord> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].vaddr, b[i].vaddr) << i;
        EXPECT_EQ(a[i].computeOps, b[i].computeOps) << i;
        EXPECT_EQ(a[i].isWrite, b[i].isWrite) << i;
    }
}

TEST(TraceLogRoundTrip, BlockBoundaryRecordCounts)
{
    constexpr std::uint32_t kBlock = 8;
    // Thread record counts straddling every block-boundary case:
    // empty, partial, exactly one block, one more, multiple blocks.
    const std::size_t counts[] = {0, 1, 7, 8, 9, 16, 17, 40};
    const int threads = static_cast<int>(std::size(counts));
    const std::string path = tmpPath("boundary.strc");

    std::vector<std::vector<TraceRecord>> streams;
    TraceLogWriter writer(path, "boundary", 1 << 20, threads, kBlock);
    for (int t = 0; t < threads; ++t) {
        streams.push_back(makeRecords(counts[t], t + 1));
        for (const TraceRecord &rec : streams.back())
            writer.append(t, rec);
    }
    const std::uint64_t total = writer.finish();
    EXPECT_EQ(total, std::accumulate(std::begin(counts),
                                     std::end(counts), std::size_t{0}));

    TraceLogReader reader(path);
    EXPECT_EQ(reader.name(), "boundary");
    EXPECT_EQ(reader.footprintBytes(), 1u << 20);
    EXPECT_EQ(reader.numThreads(), threads);
    EXPECT_EQ(reader.blockRecords(), kBlock);
    for (int t = 0; t < threads; ++t) {
        EXPECT_EQ(reader.totalRecords(t), counts[t]) << t;
        EXPECT_EQ(reader.blockCount(t), (counts[t] + kBlock - 1) / kBlock)
            << t;
        std::vector<TraceRecord> got;
        TraceRecord rec;
        while (reader.next(t, rec))
            got.push_back(rec);
        expectSameRecords(streams[static_cast<std::size_t>(t)], got);
        // The stream must stay exhausted.
        EXPECT_FALSE(reader.next(t, rec));
    }
    std::remove(path.c_str());
}

TEST(TraceLogRoundTrip, CaptureMatchesGeneratorStream)
{
    WorkloadParams p;
    p.numThreads = 3;
    p.instrPerThread = 20'000;
    p.footprintBytes = 4 * 1024 * 1024;
    auto original = makeWorkload("ycsb", p);
    const std::string path = tmpPath("capture.strc");
    const std::uint64_t written = writeTraceLog(path, *original, 256);
    EXPECT_GT(written, 0u);

    TraceLogReader reader(path);
    EXPECT_EQ(reader.name(), "ycsb");
    auto fresh = makeWorkload("ycsb", p);
    for (int t = 0; t < 3; ++t) {
        TraceCursor cursor(*fresh, t);
        TraceRecord want, got;
        std::uint64_t n = 0;
        while (cursor.next(want)) {
            ASSERT_TRUE(reader.next(t, got)) << t << ":" << n;
            EXPECT_EQ(want.vaddr, got.vaddr);
            EXPECT_EQ(want.computeOps, got.computeOps);
            EXPECT_EQ(want.isWrite, got.isWrite);
            ++n;
        }
        EXPECT_FALSE(reader.next(t, got));
        EXPECT_EQ(n, reader.totalRecords(t));
    }
    std::remove(path.c_str());
}

TEST(TraceLogWriter, AbandonedWriterLeavesNoFile)
{
    const std::string path = tmpPath("abandoned.strc");
    {
        TraceLogWriter writer(path, "w", 0, 1, 8);
        writer.append(0, {1, false, Workload::kDataBase});
        // no finish()
    }
    EXPECT_FALSE(fileExists(path));
}

// --- Seek -------------------------------------------------------------

TEST(TraceLogSeek, SeekMatchesLinearScanAndDecodesOneBlock)
{
    constexpr std::uint32_t kBlock = 16;
    const std::size_t n = 1000;
    const std::string path = tmpPath("seek.strc");
    const std::vector<TraceRecord> stream = makeRecords(n, 99);
    {
        TraceLogWriter writer(path, "seek", 0, 1, kBlock);
        for (const TraceRecord &rec : stream)
            writer.append(0, rec);
        writer.finish();
    }

    TraceLogReader reader(path);
    // Boundary-heavy probe set: block starts, ends, interior, EOF.
    const std::uint64_t probes[] = {0,  1,  15, 16, 17,  31, 32,
                                    500, 767, 999, 1000, 2000};
    for (const std::uint64_t at : probes) {
        const std::uint64_t before = reader.blocksDecoded();
        reader.seek(0, at);
        // O(1): a seek decodes at most the one containing block.
        EXPECT_LE(reader.blocksDecoded() - before, 1u) << at;
        TraceRecord rec;
        if (at >= n) {
            EXPECT_FALSE(reader.next(0, rec)) << at;
            continue;
        }
        // The cursor must continue exactly like the linear scan,
        // across the next block boundary too.
        for (std::uint64_t i = at; i < std::min<std::uint64_t>(
                                       at + 2 * kBlock + 1, n);
             ++i) {
            ASSERT_TRUE(reader.next(0, rec)) << at << "+" << i;
            EXPECT_EQ(rec.vaddr, stream[i].vaddr) << at << "+" << i;
        }
    }
    std::remove(path.c_str());
}

// --- Corrupt / truncated files ----------------------------------------

class TraceLogCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        const std::string path = tmpPath("corrupt.strc");
        TraceLogWriter writer(path, "corrupt", 0, 2, 8);
        const auto records = makeRecords(100, 5);
        for (const TraceRecord &rec : records) {
            writer.append(0, rec);
            writer.append(1, rec);
        }
        writer.finish();
        bytes_ = fileBytes(path);
        std::remove(path.c_str());
    }

    /** Expect constructing a reader over @p mutated to throw. */
    void
    expectRejected(std::vector<std::uint8_t> mutated,
                   const std::string &what)
    {
        try {
            TraceLogReader reader(std::move(mutated));
            // Header/index parse alone may not see a block-level
            // corruption; draining the streams must then hit it.
            TraceRecord rec;
            for (int t = 0; t < reader.numThreads(); ++t) {
                while (reader.next(t, rec)) {
                }
            }
            FAIL() << "not rejected: " << what;
        } catch (const TraceLogError &) {
        }
    }

    std::vector<std::uint8_t> bytes_;
};

TEST_F(TraceLogCorruption, TruncationsAtEveryRegionRejected)
{
    // Chop the file at a spread of prefix lengths covering header,
    // name, block, index and trailer regions.
    for (std::size_t keep :
         {std::size_t{0}, std::size_t{7}, std::size_t{31},
          std::size_t{40}, bytes_.size() / 2, bytes_.size() - 40,
          bytes_.size() - 1}) {
        expectRejected({bytes_.begin(),
                        bytes_.begin() + static_cast<long>(keep)},
                       "truncate@" + std::to_string(keep));
    }
}

TEST_F(TraceLogCorruption, HeaderCorruptionsRejected)
{
    auto bad = bytes_;
    bad[0] ^= 0xff; // magic
    expectRejected(bad, "magic");

    bad = bytes_;
    bad[8] = 9; // version
    expectRejected(bad, "version");

    bad = bytes_;
    bad[12] = 0xff; // thread count blown up
    bad[13] = 0xff;
    expectRejected(bad, "threads");

    bad = bytes_;
    bad[28] = 0; // blockRecords = 0
    expectRejected(bad, "blockRecords");
}

TEST_F(TraceLogCorruption, BlockAndIndexCorruptionsRejected)
{
    // Flip one byte in every block/payload/index position; each must
    // be caught by a CRC, a bound, or the trailer check. (Positions
    // inside the name are skipped: the name is not integrity-checked.)
    const std::size_t name_end = 32 + std::string("corrupt").size();
    for (std::size_t at = name_end; at < bytes_.size(); at += 13) {
        auto bad = bytes_;
        bad[at] ^= 0x40;
        expectRejected(bad, "flip@" + std::to_string(at));
    }
}

TEST_F(TraceLogCorruption, TornTailWithOldTrailerRejected)
{
    // Simulate a torn overwrite: valid header, tail replaced by junk,
    // trailer kept — the index CRC must catch it.
    auto bad = bytes_;
    for (std::size_t i = bytes_.size() - 48; i < bytes_.size() - 32; ++i)
        bad[i] = 0x5a;
    expectRejected(bad, "torn tail");
}

// --- Streaming replay workload ----------------------------------------

TEST(TraceLogWorkload, ReplayMatchesReaderAndBoundsMemory)
{
    WorkloadParams p;
    p.numThreads = 4;
    p.instrPerThread = 30'000;
    p.footprintBytes = 4 * 1024 * 1024;
    auto gen = makeWorkload("zipf:theta=0.8", p);
    const std::string path = tmpPath("replay.strc");
    // Small blocks so the capture spans many of them per thread.
    writeTraceLog(path, *gen, 64);

    std::uint64_t total_blocks = 0;
    {
        TraceLogReader reader(path);
        for (int t = 0; t < reader.numThreads(); ++t)
            total_blocks += reader.blockCount(t);
    }
    ASSERT_GT(total_blocks, 40u);

    resetPeakLiveDecodedBlocks();
    const std::uint64_t live_before = liveDecodedBlocks();
    {
        TraceLogWorkload replay(path);
        EXPECT_EQ(replay.numThreads(), 4);
        auto fresh = makeWorkload("zipf:theta=0.8", p);
        for (int t = 0; t < 4; ++t) {
            TraceCursor want(*fresh, t);
            TraceCursor got(replay, t);
            TraceRecord a, b;
            while (want.next(a)) {
                ASSERT_TRUE(got.next(b)) << t;
                ASSERT_EQ(a.vaddr, b.vaddr) << t;
                ASSERT_EQ(a.computeOps, b.computeOps) << t;
                ASSERT_EQ(a.isWrite, b.isWrite) << t;
            }
            EXPECT_FALSE(got.next(b)) << t;
            EXPECT_EQ(replay.instructionsEmitted(t),
                      fresh->instructionsEmitted(t))
                << t;
        }
        EXPECT_EQ(replay.blocksDecoded(), total_blocks);
    }
    // The headline bound: however many blocks the capture has, only
    // O(threads × ring depth) were ever alive at once — per thread:
    // ring buffer + consumer-held block + producer in-flight block.
    const std::uint64_t per_thread =
        TraceLogWorkload::kDefaultRingBlocks + 2;
    EXPECT_LE(peakLiveDecodedBlocks() - live_before,
              4 * per_thread + 1);
    EXPECT_EQ(liveDecodedBlocks(), live_before);
    std::remove(path.c_str());
}

TEST(TraceLogWorkload, SniffsFlatAndStrcMagic)
{
    WorkloadParams p;
    p.numThreads = 2;
    p.instrPerThread = 2'000;
    p.footprintBytes = 1 << 20;
    auto gen = makeWorkload("uniform", p);
    const std::string flat = tmpPath("sniff.skytrc");
    const std::string strc = tmpPath("sniff.strc");
    writeTraceFile(flat, *gen);
    auto gen2 = makeWorkload("uniform", p);
    writeTraceLog(strc, *gen2);

    auto a = makeTraceReplayWorkload(flat);
    auto b = makeTraceReplayWorkload(strc);
    EXPECT_NE(dynamic_cast<TraceFileWorkload *>(a.get()), nullptr);
    EXPECT_NE(dynamic_cast<TraceLogWorkload *>(b.get()), nullptr);
    EXPECT_EQ(a->name(), b->name());
    EXPECT_EQ(a->footprintBytes(), b->footprintBytes());
    EXPECT_TRUE(isTraceLogFile(strc));
    EXPECT_FALSE(isTraceLogFile(flat));

    const std::string junk = tmpPath("sniff.junk");
    writeFileAtomic(junk, "this is not a capture at all");
    EXPECT_THROW(makeTraceReplayWorkload(junk), std::runtime_error);
    EXPECT_THROW(makeTraceReplayWorkload(tmpPath("missing.strc")),
                 std::runtime_error);
    std::remove(flat.c_str());
    std::remove(strc.c_str());
    std::remove(junk.c_str());
}

// --- Full-system fingerprint equivalence ------------------------------

/**
 * The gate for the whole pipeline: a System driven by
 * `tracelog:path=P` must produce a byte-identical SimResult
 * fingerprint whether P holds the flat SKYTRC01 capture or the STRC
 * capture of the same workload. The spec text (and hence the report
 * label) is the same for both runs — the same trick the CI
 * trace-pipeline job uses to diff sweep reports across encodings.
 */
class TraceLogFingerprint : public ::testing::TestWithParam<std::string>
{};

TEST_P(TraceLogFingerprint, StrcReplayMatchesFlatReplay)
{
    const std::string gen_spec = GetParam();
    WorkloadParams p;
    p.numThreads = 2;
    p.instrPerThread = 4'000;
    p.footprintBytes = 8 * 1024 * 1024;

    const std::string path = tmpPath("fingerprint.trace");
    const std::string spec = "tracelog:path=" + path;
    SimConfig cfg = makeBenchConfig("SkyByte-Full");
    WorkloadParams replay_params; // ignored by replay workloads

    auto gen_flat = makeWorkload(gen_spec, p);
    writeTraceFile(path, *gen_flat);
    System flat_sys(cfg, spec, replay_params);
    const std::string flat_json = toJson(flat_sys.run());

    auto gen_strc = makeWorkload(gen_spec, p);
    writeTraceLog(path, *gen_strc, 128);
    System strc_sys(cfg, spec, replay_params);
    const std::string strc_json = toJson(strc_sys.run());

    EXPECT_EQ(flat_json, strc_json) << gen_spec;
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(ThreeWorkloads, TraceLogFingerprint,
                         ::testing::Values("zipf:theta=0.9",
                                           "scan:stride=128",
                                           "ptrchase:chain=16"));

TEST(TraceLogSpec, RejectsMissingPathAndForeignKeys)
{
    WorkloadParams params;
    EXPECT_THROW(makeWorkload("tracelog", params),
                 std::invalid_argument);
    EXPECT_THROW(makeWorkload("tracelog:threads=4", params),
                 std::invalid_argument);
    EXPECT_THROW(
        makeWorkload("tracelog:path=/nope.strc,instr=100", params),
        std::invalid_argument);
}

} // namespace
} // namespace skybyte
