/**
 * @file
 * Tests for the tooling front end: the artifact-style config-file
 * parser, the variant presets, the experiment options, and the JSON /
 * summary reporters.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/config_file.h"
#include "sim/experiment.h"
#include "sim/report.h"

namespace skybyte {
namespace {

TEST(ConfigFile, ParsesArtifactKnobs)
{
    ExperimentSpec spec;
    std::istringstream in(R"(
# SkyByte-Full-like setup
promotion_enable=1
write_log_enable=1
device_triggered_ctx_swt=1
cs_threshold=2000
ssd_cache_size_byte=7340032
write_log_size_byte=1048576
ssd_cache_way=16
host_dram_size_byte=33554432
t_policy=FAIRNESS
flash_type=ULL2
workload=tpcc
num_threads=24
instr_per_thread=50000
seed=99
)");
    applyConfigStream(in, spec);
    EXPECT_TRUE(spec.config.policy.promotionEnable);
    EXPECT_TRUE(spec.config.policy.writeLogEnable);
    EXPECT_TRUE(spec.config.policy.deviceTriggeredCtxSwitch);
    EXPECT_EQ(spec.config.policy.csThreshold, nsToTicks(2000.0));
    EXPECT_EQ(spec.config.ssdCache.dataCacheBytes, 7340032u);
    EXPECT_EQ(spec.config.ssdCache.writeLogBytes, 1048576u);
    EXPECT_EQ(spec.config.ssdCache.dataCacheWays, 16u);
    EXPECT_EQ(spec.config.hostMem.promotedBytesMax, 33554432u);
    EXPECT_EQ(spec.config.policy.schedPolicy, SchedPolicy::Cfs);
    EXPECT_EQ(spec.config.flash.timing.readLatency, usToTicks(4.0));
    EXPECT_EQ(spec.workload.name, "tpcc");
    EXPECT_EQ(spec.params.numThreads, 24);
    EXPECT_EQ(spec.params.instrPerThread, 50000u);
    EXPECT_EQ(spec.config.seed, 99u);
    // promotion_enable implies the SkyByte mechanism by default.
    EXPECT_EQ(spec.config.policy.migration, MigrationMechanism::SkyByte);
}

TEST(ConfigFile, ParsesExtensionKnobs)
{
    ExperimentSpec spec;
    std::istringstream in(R"(
huge_page_byte=2097152
plb_entries=32
reclaim_policy=active_inactive
pinned_device_byte=1048576
dram_bank_model=1
numa_sockets=2
)");
    applyConfigStream(in, spec);
    EXPECT_EQ(spec.config.hostMem.hugePageBytes, 2097152u);
    EXPECT_EQ(spec.config.hostMem.plbEntries, 32u);
    EXPECT_EQ(spec.config.hostMem.reclaim,
              ReclaimPolicy::ActiveInactive);
    EXPECT_EQ(spec.config.hostMem.pinnedDeviceBytes, 1048576u);
    EXPECT_TRUE(spec.config.hostDram.bank.enabled());
    EXPECT_TRUE(spec.config.ssdDram.bank.enabled());
    EXPECT_EQ(spec.config.numa.sockets, 2u);
}

TEST(ConfigFile, ParsesKernelKnobs)
{
    ExperimentSpec spec;
    std::istringstream in(R"(
calendar_window_ticks=1024
slab_chunk_records=64
)");
    applyConfigStream(in, spec);
    EXPECT_EQ(spec.config.kernel.calendarWindowTicks, 1024u);
    EXPECT_EQ(spec.config.kernel.slabChunkRecords, 64u);
}

TEST(ConfigFile, RejectsBadKernelKnobs)
{
    for (const char *bad :
         {"calendar_window_ticks=1000", // not a power of two
          "calendar_window_ticks=32",   // below the bitmap word size
          "calendar_window_ticks=0",
          "calendar_window_ticks=4294967296", // 2^32: truncates to 0
          "slab_chunk_records=0",
          "slab_chunk_records=4294967808"}) { // 2^32+512

        ExperimentSpec spec;
        std::istringstream in(bad);
        EXPECT_THROW(applyConfigStream(in, spec), std::invalid_argument)
            << bad;
    }
}

TEST(KernelKnobs, SimulationResultsAreWindowInvariant)
{
    // The calendar window / slab chunk knobs tune wall-clock only:
    // the same run under a tiny window (heavy overflow churn) must
    // produce bit-identical results.
    ExperimentOptions opt;
    opt.instrPerThread = 3'000;
    SimConfig base = makeBenchConfig("SkyByte-Full");
    SimConfig tuned = base;
    tuned.kernel.calendarWindowTicks = 256;
    tuned.kernel.slabChunkRecords = 8;
    const SimResult a = runConfig(base, "ycsb", opt);
    const SimResult b = runConfig(tuned, "ycsb", opt);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.committedInstructions, b.committedInstructions);
    EXPECT_EQ(a.flashHostPrograms, b.flashHostPrograms);
    EXPECT_EQ(a.contextSwitches, b.contextSwitches);
    EXPECT_EQ(a.cxlBytes, b.cxlBytes);
}

TEST(ConfigFile, BankModelCanBeTurnedBackOff)
{
    ExperimentSpec spec;
    std::istringstream on(R"(dram_bank_model=1)");
    applyConfigStream(on, spec);
    ASSERT_TRUE(spec.config.hostDram.bank.enabled());
    std::istringstream off(R"(dram_bank_model=0)");
    applyConfigStream(off, spec);
    EXPECT_FALSE(spec.config.hostDram.bank.enabled());
    EXPECT_FALSE(spec.config.ssdDram.bank.enabled());
}

TEST(ConfigFile, RejectsBadHugePageSizes)
{
    for (const char *bad :
         {"huge_page_byte=1000",     // not a multiple of 4 KB
          "huge_page_byte=12288",    // multiple but not a power of two
          "huge_page_byte=2048"}) {  // smaller than a page
        ExperimentSpec spec;
        std::istringstream in(bad);
        EXPECT_THROW(applyConfigStream(in, spec), std::invalid_argument)
            << bad;
    }
    // 0 (off) and 2 MB (SIV) are both fine.
    ExperimentSpec spec;
    std::istringstream in("huge_page_byte=0\nhuge_page_byte=2097152\n");
    EXPECT_NO_THROW(applyConfigStream(in, spec));
}

TEST(ConfigFile, RejectsBadReclaimPolicy)
{
    ExperimentSpec spec;
    std::istringstream in("reclaim_policy=mglru");
    EXPECT_THROW(applyConfigStream(in, spec), std::invalid_argument);
}

TEST(ConfigFile, WorkloadSpecStringsParse)
{
    ExperimentSpec spec;
    std::istringstream in(
        "workload=zipf:theta=0.75,footprint=16M,write_ratio=0.4\n");
    applyConfigStream(in, spec);
    EXPECT_EQ(spec.workload.name, "zipf");
    EXPECT_EQ(spec.workload.raw("theta"), "0.75");
    EXPECT_EQ(spec.workload.raw("footprint"), "16M");
}

TEST(ConfigFile, WorkloadSpecErrorsCarryLineNumbers)
{
    // Unknown workload names and bad generator args must fail at
    // config-parse time, not when the run starts.
    for (const char *bad :
         {"workload=nope", "workload=zipf:theta=1.5",
          "workload=zipf:no_such_arg=1", "workload=zipf:theta="}) {
        ExperimentSpec spec;
        std::istringstream in(bad);
        EXPECT_THROW(applyConfigStream(in, spec), std::invalid_argument)
            << bad;
    }
}

TEST(ConfigFile, RejectsUnknownKeys)
{
    ExperimentSpec spec;
    std::istringstream in("no_such_knob=1\n");
    EXPECT_THROW(applyConfigStream(in, spec), std::invalid_argument);
}

TEST(ConfigFile, RejectsMalformedValues)
{
    ExperimentSpec spec;
    EXPECT_THROW(applyAssignment("cs_threshold=fast", spec),
                 std::invalid_argument);
    // Negative integers must not wrap through stoull.
    EXPECT_THROW(applyAssignment("instr_per_thread=-1", spec),
                 std::invalid_argument);
    EXPECT_THROW(applyAssignment("footprint_byte=-4096", spec),
                 std::invalid_argument);
    EXPECT_THROW(applyAssignment("write_log_enable=maybe", spec),
                 std::invalid_argument);
    EXPECT_THROW(applyAssignment("t_policy=LIFO", spec),
                 std::invalid_argument);
    EXPECT_THROW(applyAssignment("flash_type=QLC", spec),
                 std::invalid_argument);
    EXPECT_THROW(applyAssignment("just-a-word", spec),
                 std::invalid_argument);
}

TEST(ConfigFile, CommentsAndBlanksIgnored)
{
    ExperimentSpec spec;
    std::istringstream in("\n# comment\n  \nwrite_log_enable=1\n");
    applyConfigStream(in, spec);
    EXPECT_TRUE(spec.config.policy.writeLogEnable);
}

TEST(ConfigFile, MissingFileThrows)
{
    ExperimentSpec spec;
    EXPECT_THROW(applyConfigFile("/tmp/definitely_missing.config", spec),
                 std::runtime_error);
}

TEST(ConfigFile, MigrationMechanismSelection)
{
    ExperimentSpec spec;
    applyAssignment("migration_mechanism=tpp", spec);
    EXPECT_EQ(spec.config.policy.migration, MigrationMechanism::Tpp);
    applyAssignment("migration_mechanism=astriflash", spec);
    EXPECT_EQ(spec.config.policy.migration,
              MigrationMechanism::AstriFlash);
}

TEST(Presets, VariantFlagsMatchPaper)
{
    EXPECT_FALSE(makeConfig("Base-CSSD").policy.writeLogEnable);
    EXPECT_TRUE(makeConfig("SkyByte-W").policy.writeLogEnable);
    EXPECT_TRUE(makeConfig("SkyByte-C").policy.deviceTriggeredCtxSwitch);
    EXPECT_TRUE(makeConfig("SkyByte-P").policy.promotionEnable);
    const SimConfig full = makeConfig("SkyByte-Full");
    EXPECT_TRUE(full.policy.writeLogEnable);
    EXPECT_TRUE(full.policy.promotionEnable);
    EXPECT_TRUE(full.policy.deviceTriggeredCtxSwitch);
    EXPECT_TRUE(makeConfig("DRAM-Only").dramOnly);
    EXPECT_EQ(makeConfig("SkyByte-CT").policy.migration,
              MigrationMechanism::Tpp);
    EXPECT_EQ(makeConfig("AstriFlash-CXL").policy.migration,
              MigrationMechanism::AstriFlash);
    EXPECT_THROW(makeConfig("SkyByte-XYZ"), std::invalid_argument);
    EXPECT_EQ(allVariantNames().size(), 8u);
}

TEST(Presets, ThreadCountRule)
{
    ExperimentOptions opt;
    EXPECT_EQ(defaultThreadsFor(makeConfig("Base-CSSD"), opt), 8);
    EXPECT_EQ(defaultThreadsFor(makeConfig("SkyByte-Full"), opt), 24);
    opt.threadsOverride = 16;
    EXPECT_EQ(defaultThreadsFor(makeConfig("SkyByte-Full"), opt), 16);
}

TEST(Presets, WorkNormalizedAcrossThreadCounts)
{
    ExperimentOptions opt;
    opt.instrPerThread = 120'000;
    const WorkloadParams p8 = makeParams(makeConfig("Base-CSSD"), opt);
    const WorkloadParams p24 =
        makeParams(makeConfig("SkyByte-Full"), opt);
    EXPECT_EQ(p8.instrPerThread * 8, p24.instrPerThread * 24);
}

TEST(ExperimentOptions, EnvOverrides)
{
    setenv("SKYBYTE_BENCH_INSTR", "12345", 1);
    setenv("SKYBYTE_BENCH_THREADS", "5", 1);
    setenv("SKYBYTE_BENCH_FOOTPRINT_MB", "3", 1);
    const ExperimentOptions opt = ExperimentOptions::fromEnv();
    EXPECT_EQ(opt.instrPerThread, 12345u);
    EXPECT_EQ(opt.threadsOverride, 5);
    EXPECT_EQ(opt.footprintBytes, 3u * 1024 * 1024);
    unsetenv("SKYBYTE_BENCH_INSTR");
    unsetenv("SKYBYTE_BENCH_THREADS");
    unsetenv("SKYBYTE_BENCH_FOOTPRINT_MB");
}

TEST(Report, JsonContainsKeyFields)
{
    SimResult res;
    res.variant = "SkyByte-Full";
    res.workload = "ycsb";
    res.execTime = usToTicks(1000.0);
    res.committedInstructions = 42;
    res.flashHostPrograms = 7;
    res.offchipLatency.record(100);
    const std::string json = toJson(res);
    EXPECT_NE(json.find("\"variant\": \"SkyByte-Full\""),
              std::string::npos);
    EXPECT_NE(json.find("\"committed_instructions\": 42"),
              std::string::npos);
    EXPECT_NE(json.find("\"flash_host_programs\": 7"),
              std::string::npos);
    EXPECT_NE(json.find("offchip_latency_cdf_ns"), std::string::npos);
    // Braces balance.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(Report, SummaryMentionsEverything)
{
    SimResult res;
    res.variant = "Base-CSSD";
    res.workload = "tpcc";
    std::ostringstream out;
    printSummary(res, out);
    EXPECT_NE(out.str().find("Base-CSSD"), std::string::npos);
    EXPECT_NE(out.str().find("exec_time_ms"), std::string::npos);
    EXPECT_NE(out.str().find("flash_programs"), std::string::npos);
}

TEST(Report, JsonFileRoundTrip)
{
    SimResult res;
    res.variant = "x";
    res.workload = "y";
    const std::string path = "/tmp/skybyte_report_test.json";
    writeJsonFile(res, path);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_EQ(all, toJson(res));
    std::remove(path.c_str());
}

} // namespace
} // namespace skybyte
