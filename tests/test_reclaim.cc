/**
 * @file
 * Tests for the active/inactive reclaim lists (§III-C): insertion at the
 * active head, lazy reference bits, activation of touched inactive
 * entries, second chances during aging and victim scans, the anti-thrash
 * idle window, and list-ratio rebalancing.
 */

#include <gtest/gtest.h>

#include "core/reclaim.h"

namespace skybyte {
namespace {

TEST(Reclaim, InsertTracksAndSizes)
{
    ActiveInactiveLists lists;
    lists.insert(1, 0);
    lists.insert(2, 0);
    EXPECT_TRUE(lists.tracked(1));
    EXPECT_TRUE(lists.tracked(2));
    EXPECT_FALSE(lists.tracked(3));
    EXPECT_EQ(lists.size(), 2u);
    EXPECT_EQ(lists.activeSize() + lists.inactiveSize(), 2u);
}

TEST(Reclaim, DuplicateInsertIgnored)
{
    ActiveInactiveLists lists;
    lists.insert(1, 0);
    lists.insert(1, 5);
    EXPECT_EQ(lists.size(), 1u);
}

TEST(Reclaim, RebalanceKeepsActiveBounded)
{
    ActiveInactiveLists lists;
    for (std::uint64_t k = 0; k < 30; ++k)
        lists.insert(k, 0);
    // Linux keeps active roughly <= 2x inactive; our invariant is
    // active <= 2 * (inactive + 1).
    EXPECT_LE(lists.activeSize(), 2 * (lists.inactiveSize() + 1));
    EXPECT_GT(lists.inactiveSize(), 0u);
    EXPECT_GT(lists.stats().deactivations, 0u);
}

TEST(Reclaim, VictimIsOldestUnreferenced)
{
    ActiveInactiveLists lists;
    for (std::uint64_t k = 0; k < 12; ++k)
        lists.insert(k, k);
    std::uint64_t victim = 0;
    ASSERT_TRUE(lists.selectVictim(100, 0, victim));
    // Key 0 was inserted first and never touched: it aged to the
    // inactive tail and is the first victim.
    EXPECT_EQ(victim, 0u);
    EXPECT_FALSE(lists.tracked(0));
    EXPECT_EQ(lists.stats().evictions, 1u);
}

TEST(Reclaim, TouchedInactiveEntryGetsActivated)
{
    ActiveInactiveLists lists;
    for (std::uint64_t k = 0; k < 12; ++k)
        lists.insert(k, k);
    ASSERT_GT(lists.inactiveSize(), 0u);
    // Key 0 is the coldest; touching it must spare it from the next
    // victim scan.
    lists.touch(0, 50);
    std::uint64_t victim = 0;
    ASSERT_TRUE(lists.selectVictim(100, 0, victim));
    EXPECT_NE(victim, 0u);
    EXPECT_TRUE(lists.tracked(0));
    EXPECT_GT(lists.stats().activations, 0u);
}

TEST(Reclaim, ReferencedActiveEntrySurvivesAging)
{
    ActiveInactiveLists lists;
    lists.insert(1, 0);
    lists.touch(1, 1); // sets the lazy referenced bit
    // Push enough entries that key 1 reaches the active tail and is
    // considered for aging; the referenced bit must give it a second
    // chance instead of a deactivation.
    for (std::uint64_t k = 2; k < 20; ++k)
        lists.insert(k, k);
    // Without the referenced bit, key 1 (the oldest) would be the very
    // first victim. The second chance makes it outlive the untouched
    // entries inserted right after it.
    std::uint64_t victim = 0;
    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(lists.selectVictim(1000, 0, victim));
        EXPECT_NE(victim, 1u) << "referenced entry evicted first";
    }
    EXPECT_GT(lists.stats().secondChances, 0u);
}

TEST(Reclaim, MinIdleRefusesHotVictims)
{
    ActiveInactiveLists lists;
    for (std::uint64_t k = 0; k < 8; ++k)
        lists.insert(k, 1000);
    std::uint64_t victim = 0;
    // All entries used at t=1000; at t=1100 with a 500-tick idle
    // requirement nothing qualifies.
    EXPECT_FALSE(lists.selectVictim(1100, 500, victim));
    EXPECT_EQ(lists.size(), 8u); // nothing evicted
    // Past the window the coldest entry is released.
    EXPECT_TRUE(lists.selectVictim(2000, 500, victim));
}

TEST(Reclaim, EraseRemovesFromEitherList)
{
    ActiveInactiveLists lists;
    for (std::uint64_t k = 0; k < 12; ++k)
        lists.insert(k, k);
    ASSERT_GT(lists.inactiveSize(), 0u);
    lists.erase(0);  // inactive by now
    lists.erase(11); // most recent: active
    EXPECT_FALSE(lists.tracked(0));
    EXPECT_FALSE(lists.tracked(11));
    EXPECT_EQ(lists.size(), 10u);
}

TEST(Reclaim, VictimScanForcesAgingWhenAllActive)
{
    ActiveInactiveLists lists;
    lists.insert(1, 0);
    lists.insert(2, 1);
    // Both are active (too few entries for rebalance to demote).
    std::uint64_t victim = 0;
    ASSERT_TRUE(lists.selectVictim(100, 0, victim));
    EXPECT_EQ(victim, 1u); // oldest ages out first
}

TEST(Reclaim, EmptyListsHaveNoVictim)
{
    ActiveInactiveLists lists;
    std::uint64_t victim = 0;
    EXPECT_FALSE(lists.selectVictim(0, 0, victim));
}

TEST(Reclaim, TouchUntrackedIsNoop)
{
    ActiveInactiveLists lists;
    lists.touch(42, 0);
    lists.erase(42);
    EXPECT_EQ(lists.size(), 0u);
}

} // namespace
} // namespace skybyte
